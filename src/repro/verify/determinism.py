"""Determinism auditor (D8xx): same-seed replay and tie-break discipline.

The project's reproducibility claims — "zero-fault runs are
bit-identical", "a (seed, rate) pair always yields the same fault
sequence" — were, until this pass, asserted ad hoc by individual tests.
This module audits them from traces the way the other passes audit
everything else, built on the canonical order-sensitive
:meth:`~repro.runtime.tracing.ExecutionTrace.fingerprint`:

* **D801 same-seed replay divergence** — re-run the scenario with a
  fresh same-seed fault model and compare fingerprints; any difference
  (a tie resolved by hash order, an unseeded draw, wall-clock leakage
  into simulated time) is a determinism bug;
* **D802 event-time monotonicity and tie-break totality** — every
  event must carry a record-order ``seq`` stamp, no two events may
  share one (two events at equal time with equal sequence have no
  defined order), time may not run backwards inside an event, and on a
  serial resource the sequence order must agree with the time order;
* **D803 RNG-draw provenance** — every stochastic decision comes from
  the one seeded :class:`~repro.resilience.faults.FaultModel` RNG,
  whose ``(seed, draws)`` the simulators stamp into
  ``meta["rng"]``; the replay must consume the RNG identically, so a
  mid-run reseed or an out-of-band draw shows up as a provenance
  mismatch;
* **D804 cross-run trace-diff localization** — when D801 fires, the
  first diverging canonical line of the two fingerprints is reported
  verbatim (:func:`trace_diff`), so a replay failure is debuggable
  rather than a bare hash mismatch;
* **D805 meta/seed stamping completeness** — the producer, clock
  domain, and (for simulator traces) RNG provenance must be stamped;
  an unstamped trace cannot be audited or reproduced.

Traces come in two clock domains (``meta["clock"]``): ``"virtual"``
(the simulators — times are part of the deterministic contract) and
``"wall"`` (the real threaded runtime — only the executed-task set and
fault/recovery decisions are deterministic).  D802's seq checks apply
to virtual-clock traces only; D801/D803/D805 apply to both.

The injectors (``reorder_ties``, ``reseed_midrun``, ``drop_seq``)
corrupt a trace the way a broken event loop would, for the
verify-the-verifier self-tests (``make selftest``).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional

from repro.runtime.tracing import ExecutionTrace, TraceEvent
from repro.verify.report import Report

__all__ = [
    "verify_determinism",
    "trace_diff",
    "reorder_ties",
    "reseed_midrun",
    "drop_seq",
]


def trace_diff(a: ExecutionTrace, b: ExecutionTrace) -> Optional[str]:
    """First diverging canonical line between two traces (D804).

    Returns ``None`` when the canonical renderings are identical (the
    fingerprints then match too), else a human-readable one-line
    description of the earliest divergence.
    """
    la, lb = a.fingerprint_lines(), b.fingerprint_lines()
    for i, (x, y) in enumerate(zip(la, lb)):
        if x != y:
            return (f"first divergence at canonical line {i}: "
                    f"run A {x!r} vs run B {y!r}")
    if len(la) != len(lb):
        i = min(len(la), len(lb))
        extra, which = (la, "A") if len(la) > len(lb) else (lb, "B")
        return (f"run {which} has {abs(len(la) - len(lb))} extra "
                f"canonical line(s) from line {i}: first is {extra[i]!r}")
    return None


def _audit_order(trace: ExecutionTrace, report: Report,
                 max_reported: int, tol: float) -> None:
    """D802: seq stamping, uniqueness, and time/sequence consistency."""
    stamped = [e for e in trace.events if e.seq >= 0]
    missing = len(trace.events) - len(stamped)
    if missing:
        report.add(
            "D802",
            f"{missing} event(s) carry no tie-break sequence stamp "
            f"(seq=-1): simultaneous events have no total order",
        )
    n_back = 0
    for e in trace.events:
        if e.end < e.start - tol:
            n_back += 1
            if n_back <= max_reported:
                report.add(
                    "D802",
                    f"time runs backwards in task {e.task} on "
                    f"{e.resource}: start={e.start!r} > end={e.end!r}",
                    tasks=(e.task,),
                )
    seen: dict[int, TraceEvent] = {}
    n_dup = 0
    for e in list(trace.events) + list(trace.transfers):
        if e.seq < 0:
            continue
        other = seen.get(e.seq)
        if other is not None:
            n_dup += 1
            if n_dup <= max_reported:
                tie = (
                    " at equal time"
                    if other.start == e.start else ""  # noqa: RV302 (label)
                )
                where = (f"on {e.resource}" if other.resource == e.resource
                         else f"on {other.resource} and {e.resource}")
                report.add(
                    "D802",
                    f"two events{tie} {where} share sequence {e.seq} "
                    f"(tasks {other.task} and {e.task}): the tie-break "
                    f"is not total",
                    tasks=(other.task, e.task),
                )
        else:
            seen[e.seq] = e
    # On a *serial* resource (no overlapping executions) the record
    # order must agree with the time order regardless of whether the
    # producer records at start or at finish.  Stream-parallel
    # resources can legitimately finish out of start order, so they
    # are skipped.
    by_res: dict[str, list[TraceEvent]] = {}
    for e in stamped:
        by_res.setdefault(e.resource, []).append(e)
    n_inv = 0
    for res, evs in sorted(by_res.items()):
        by_time = sorted(evs, key=lambda e: (e.start, e.end, e.seq))
        serial = all(
            a.end <= b.start + tol for a, b in zip(by_time, by_time[1:])
        )
        if not serial:
            continue
        by_seq = sorted(evs, key=lambda e: e.seq)
        for a, b in zip(by_seq, by_seq[1:]):
            if a.start > b.start + tol:
                n_inv += 1
                if n_inv <= max_reported:
                    report.add(
                        "D802",
                        f"on serial resource {res}, sequence order "
                        f"contradicts time order: seq {a.seq} (task "
                        f"{a.task}) at t={a.start!r} recorded before "
                        f"seq {b.seq} (task {b.task}) at t={b.start!r}",
                        tasks=(a.task, b.task),
                    )
    for count, label in ((n_back, "backwards event(s)"),
                         (n_dup, "duplicate sequence(s)"),
                         (n_inv, "order inversion(s)")):
        if count > max_reported:
            report.add("D802",
                       f"... further {count - max_reported} {label} "
                       "suppressed")


def _audit_meta(trace: ExecutionTrace, report: Report) -> None:
    """D805: provenance stamping completeness."""
    producer = trace.meta.get("producer")
    if not producer:
        report.add(
            "D805",
            "meta['producer'] is missing: the trace does not say which "
            "engine emitted it",
        )
    clock = trace.meta.get("clock")
    if clock not in ("virtual", "wall"):
        report.add(
            "D805",
            f"meta['clock'] is {clock!r}: must be 'virtual' (simulator) "
            "or 'wall' (threaded runtime) so the fingerprint knows "
            "which content is deterministic",
        )
    if clock == "virtual" and "rng" not in trace.meta:
        report.add(
            "D805",
            "meta['rng'] is missing: a simulator trace must stamp its "
            "RNG provenance ({'seed': ..., 'draws': ...}, or None for "
            "a run with no fault model)",
        )
    rng = trace.meta.get("rng")
    if rng is not None:
        well_formed = (
            isinstance(rng, dict) and "seed" in rng
            and isinstance(rng.get("draws"), int) and rng["draws"] >= 0
        )
        if not well_formed:
            report.add(
                "D805",
                f"meta['rng'] is malformed: {rng!r} (expected "
                "{'seed': ..., 'draws': <int >= 0>} or None)",
            )


def verify_determinism(
    run: Callable[[], ExecutionTrace],
    trace: Optional[ExecutionTrace] = None,
    *,
    replay: bool = True,
    tol: float = 0.0,
    max_reported: int = 25,
    name: str = "determinism",
) -> Report:
    """Audit one scenario's determinism (D8xx).

    ``run`` executes the scenario from scratch — same DAG, same machine,
    same seed, a *fresh* fault model — and returns its trace.  ``trace``
    is the first run's trace; when ``None``, ``run()`` is called once to
    produce it.  With ``replay=True`` (the default) ``run()`` is called
    (again) for the D801/D803/D804 same-seed replay comparison;
    ``replay=False`` restricts the audit to the static D802/D805 checks
    on ``trace`` alone.
    """
    report = Report(name)
    if trace is None:
        trace = run()
    report.stats["events"] = float(len(trace.events))
    report.stats["seq_stamped"] = float(
        sum(1 for e in trace.events if e.seq >= 0)
    )

    _audit_meta(trace, report)
    if trace.meta.get("clock", "virtual") == "virtual":
        _audit_order(trace, report, max_reported, tol)

    if not replay:
        return report

    twin = run()
    fp_a, fp_b = trace.fingerprint(), twin.fingerprint()
    report.stats["replayed"] = 1.0
    if fp_a != fp_b:
        report.add(
            "D801",
            f"same-seed replay diverged: fingerprint {fp_a[:16]}... vs "
            f"{fp_b[:16]}... — the run is not a function of its seed",
        )
        diff = trace_diff(trace, twin)
        if diff is not None:
            report.add("D804", diff)

    rng_a = trace.meta.get("rng")
    rng_b = twin.meta.get("rng")
    if rng_a != rng_b:
        report.add(
            "D803",
            f"RNG provenance diverged between same-seed runs: "
            f"{rng_a!r} vs replay {rng_b!r} — draws were not consumed "
            "in event order (reseed or out-of-band draw)",
        )
    elif isinstance(rng_a, dict):
        report.stats["rng_draws"] = float(rng_a.get("draws", 0))
    return report


# ----------------------------------------------------------------------
# fault injectors (verify-the-verifier)
# ----------------------------------------------------------------------
def _clone(trace: ExecutionTrace,
           events: Optional[list[TraceEvent]] = None,
           meta: Optional[dict] = None) -> ExecutionTrace:
    return ExecutionTrace(
        events=list(trace.events) if events is None else events,
        transfers=list(trace.transfers),
        data_events=list(trace.data_events),
        fault_events=list(trace.fault_events),
        recovery_events=list(trace.recovery_events),
        sync_events=list(trace.sync_events),
        meta=dict(trace.meta) if meta is None else meta,
        next_seq=trace.next_seq,
    )


def reorder_ties(trace: ExecutionTrace) -> ExecutionTrace:
    """Corrupt ``trace`` by collapsing one tie-break: two events end up
    with the same sequence number (preferring a pair at equal start
    time — exactly the "equal time, equal sequence" case D802 forbids).

    Raises ``ValueError`` when the trace has fewer than two
    seq-stamped events.
    """
    stamped = sorted((e for e in trace.events if e.seq >= 0),
                     key=lambda e: e.seq)
    if len(stamped) < 2:
        raise ValueError(
            "trace has fewer than two seq-stamped events; no tie-break "
            "to collapse"
        )
    by_start: dict[float, TraceEvent] = {}
    pair = None
    for e in stamped:
        other = by_start.get(e.start)
        if other is not None:
            pair = (other, e)
            break
        by_start[e.start] = e
    if pair is None:
        pair = (stamped[0], stamped[1])
    keep, victim = pair
    moved = replace(victim, seq=keep.seq)
    events = [moved if e is victim else e for e in trace.events]
    return _clone(trace, events=events)


def drop_seq(trace: ExecutionTrace) -> ExecutionTrace:
    """Corrupt ``trace`` by erasing every tie-break sequence stamp
    (``seq=-1``), as an event loop pushing bare ``(when, fn)`` tuples
    would produce.  Must fail D802.  Raises ``ValueError`` when the
    trace has no stamped events to erase.
    """
    if not any(e.seq >= 0 for e in trace.events):
        raise ValueError("trace has no seq-stamped events to erase")
    events = [replace(e, seq=-1) for e in trace.events]
    return _clone(trace, events=events)


def reseed_midrun(trace: ExecutionTrace) -> ExecutionTrace:
    """Corrupt ``trace``'s RNG provenance to what a mid-run reseed (or
    an out-of-band draw) would have stamped: the draw count no longer
    matches what a faithful same-seed replay consumes.  Must fail D803.
    Raises ``ValueError`` when the trace carries no RNG stamp to
    corrupt.
    """
    if "rng" not in trace.meta:
        raise ValueError(
            "trace meta carries no 'rng' provenance stamp to corrupt"
        )
    rng = trace.meta["rng"]
    if rng is None:
        bad: Optional[dict] = {"seed": None, "draws": 3}
    else:
        bad = {"seed": rng.get("seed"), "draws": int(rng.get("draws", 0)) + 7}
    meta = dict(trace.meta)
    meta["rng"] = bad
    return _clone(trace, meta=meta)
