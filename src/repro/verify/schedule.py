"""Schedule/trace verifier: does an ExecutionTrace respect the DAG?

Centralizes the feasibility checks that were previously scattered as
ad-hoc assertions through the tests and
:meth:`repro.runtime.tracing.ExecutionTrace.validate` (which now
delegates here).  Given a :class:`~repro.dag.tasks.TaskDAG` and an
:class:`~repro.runtime.tracing.ExecutionTrace` it verifies:

* **completeness** — every task executes exactly once (``S201``), with
  a non-negative duration (``S202``);
* **happens-before** — no task starts before every predecessor has
  ended (``S203``);
* **resource exclusivity** — an exclusive resource (CPU workers by
  default) never runs two tasks at once (``S204``); GPU streams are
  shared by design and may overlap;
* **mutex windows** — tasks in one mutex group (scatter-adds into one
  facing panel) never overlap in time, on any resource (``S205``);
* **placement** — GPU resources only ever run UPDATE-kind tasks: panel
  factorizations stay on CPU, paper §V-B (``S206``); solve-phase DAGs
  never offload at all;
* **provenance** — a trace stamped with a scheduler name
  (``trace.meta["scheduler"]``, written by the threaded engine) must
  name a registered policy (``S208``); an unknown name means the trace
  and the runtime registry drifted.  The name is surfaced in
  ``report.stats`` so benchmark sweeps can audit which policy produced
  each schedule.

All comparisons use an absolute tolerance ``tol`` — simulated times are
floats and exact equality would misreport back-to-back events.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.dag.tasks import TaskDAG, TaskKind
from repro.runtime.tracing import ExecutionTrace
from repro.verify.report import Report

__all__ = ["verify_schedule", "assert_valid_schedule", "ScheduleError"]


def _ft(x: float) -> str:
    """Format a (possibly numpy) time scalar for a finding message."""
    return f"{float(x):.9g}"


class ScheduleError(AssertionError):
    """Raised by :func:`assert_valid_schedule`; carries the report."""

    def __init__(self, report: Report) -> None:
        super().__init__(report.format())
        self.report = report


def verify_schedule(
    dag: TaskDAG,
    trace: ExecutionTrace,
    *,
    exclusive_resources: Optional[Iterable[str]] = None,
    check_mutex: bool = True,
    check_gpu_kind: bool = True,
    tol: float = 1e-12,
    max_reported: int = 50,
) -> Report:
    """Check ``trace`` against ``dag``; returns a :class:`Report`.

    ``exclusive_resources`` defaults to every resource whose name starts
    with ``"cpu"``; pass an explicit iterable (possibly empty) to
    override — the threaded engine's wall-clock traces, for instance,
    interleave records and are checked without exclusivity.
    """
    report = Report("schedule")
    n = dag.n_tasks
    report.stats["tasks"] = n
    report.stats["events"] = len(trace.events)

    # Provenance: the threaded engine stamps the scheduler that produced
    # the trace; audit the stamp against the registries (S208).
    sched = trace.meta.get("scheduler")
    if sched is not None:
        from repro.runtime import _POLICIES
        from repro.runtime.scheduling import THREAD_SCHEDULERS

        report.stats["scheduler"] = sched
        if sched not in THREAD_SCHEDULERS and sched not in _POLICIES \
                and sched != "static":
            report.add(
                "S208",
                f"trace records unknown scheduler {sched!r}; registered "
                f"thread schedulers: {sorted(THREAD_SCHEDULERS)}, "
                f"simulated policies: {sorted(_POLICIES)}",
            )

    seen = np.zeros(n, dtype=np.int64)
    start = np.full(n, np.nan)
    end = np.full(n, np.nan)
    for e in trace.events:
        if not 0 <= e.task < n:
            report.add("S207", f"trace names unknown task {e.task}",
                       tasks=(int(e.task),))
            continue
        seen[e.task] += 1
        start[e.task] = e.start
        end[e.task] = e.end
        if e.end < e.start - tol:
            report.add(
                "S202",
                f"task {e.task} ends before start "
                f"({_ft(e.end)} < {_ft(e.start)}) on {e.resource}",
                tasks=(int(e.task),),
            )
    wrong = np.flatnonzero(seen != 1)
    if wrong.size:
        sample = ", ".join(str(int(t)) for t in wrong[:10])
        report.add(
            "S201",
            f"tasks executed != once: [{sample}]"
            + (" ..." if wrong.size > 10 else "")
            + f" ({wrong.size} task(s))",
            tasks=tuple(int(t) for t in wrong[:10]),
        )
        # Times for unexecuted tasks are undefined; bail before deriving
        # ordering violations from NaNs.
        return report

    # Happens-before along every edge, vectorized.
    heads = np.repeat(np.arange(n, dtype=np.int64), np.diff(dag.succ_ptr))
    tails = dag.succ_list
    bad = np.flatnonzero(start[tails] < end[heads] - tol)
    for i in bad[:max_reported]:
        t, s = int(heads[i]), int(tails[i])
        report.add(
            "S203",
            f"dependency violated: {t} -> {s} "
            f"(succ starts {_ft(start[s])} before pred ends {_ft(end[t])})",
            tasks=(t, s),
        )
    if bad.size > max_reported:
        report.add("S203", f"... {bad.size - max_reported} further "
                           "dependency violations suppressed")
    report.stats["dependency_violations"] = int(bad.size)

    # Resource exclusivity.
    excl = (
        set(exclusive_resources)
        if exclusive_resources is not None
        else {r for r in trace.resources() if r.startswith("cpu")}
    )
    for res, evs in trace.events_by_resource().items():
        if res not in excl:
            continue
        for a, b in zip(evs, evs[1:]):
            if b.start < a.end - tol:
                report.add(
                    "S204",
                    f"overlap on {res}: tasks {a.task} and {b.task} "
                    f"([{_ft(a.start)}, {_ft(a.end)}] vs "
                    f"[{_ft(b.start)}, {_ft(b.end)}])",
                    tasks=(int(a.task), int(b.task)),
                )

    # GPU placement: only UPDATE tasks offload (facto); solve never does.
    if check_gpu_kind:
        for res, evs in trace.events_by_resource().items():
            if not res.startswith("gpu"):
                continue
            for e in evs:
                kind = TaskKind(int(dag.kind[e.task]))
                if dag.phase != "facto" or kind != TaskKind.UPDATE:
                    report.add(
                        "S206",
                        f"{kind.name} task {e.task} ran on {res}; only "
                        "facto-phase UPDATE tasks may run on a GPU",
                        tasks=(int(e.task),),
                    )

    # Mutex windows: members of one group must not overlap in time.
    if check_mutex:
        groups: dict[int, list[int]] = {}
        for t in range(n):
            g = int(dag.mutex[t])
            if g >= 0:
                groups.setdefault(g, []).append(t)
        n_viol = 0
        for g, tasks in groups.items():
            tasks.sort(key=lambda t: (start[t], end[t]))
            for a, b in zip(tasks, tasks[1:]):
                if start[b] < end[a] - tol:
                    n_viol += 1
                    if n_viol <= max_reported:
                        report.add(
                            "S205",
                            f"mutex {g} violated by tasks {a}, {b}: "
                            f"scatter-add windows overlap "
                            f"([{_ft(start[a])}, {_ft(end[a])}] vs "
                            f"[{_ft(start[b])}, {_ft(end[b])}])",
                            tasks=(int(a), int(b)),
                        )
        report.stats["mutex_violations"] = n_viol

    return report


def assert_valid_schedule(
    dag: TaskDAG,
    trace: ExecutionTrace,
    *,
    exclusive_resources: Optional[Iterable[str]] = None,
    check_mutex: bool = True,
    check_gpu_kind: bool = True,
    tol: float = 1e-12,
) -> None:
    """Raise :class:`ScheduleError` (an ``AssertionError``) on violations."""
    report = verify_schedule(
        dag,
        trace,
        exclusive_resources=exclusive_resources,
        check_mutex=check_mutex,
        check_gpu_kind=check_gpu_kind,
        tol=tol,
    )
    if not report.ok:
        raise ScheduleError(report)
