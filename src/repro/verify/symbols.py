"""Symbolic-structure auditor (N5xx): re-derive, then cross-check.

Every GFlop/s number this repo reports divides a *symbolically derived*
flop count by a simulated time — if the block structure
(:class:`~repro.symbolic.structures.SymbolMatrix`) or the per-task flop
annotations drift from the true factor structure, every Figure 2/4 point
is silently wrong while all schedules still "look" valid.  This pass
re-derives the ground truth from first principles — the elimination tree
(:mod:`repro.symbolic.etree`) and the Gilbert–Ng–Peyton column counts
(:mod:`repro.symbolic.colcount`) on the permuted pattern — and checks
the aggregated structures against it, without trusting any field of the
:class:`~repro.symbolic.analyze.AnalysisResult` beyond the permutation
and pattern it starts from.

Checks (``verify_symbolic``):

* **N500 pattern** — the analysis' stored pattern equals the permuted
  symmetrised input pattern (recomputed from the original matrix);
* **N501 nnz(L)** — ``symbol.nnz()`` equals the column-count sum exactly
  (amalgamation disabled), or is ≥ it (amalgamation adds structural
  fill, never removes entries);
* **N502 per-column counts** — inside panel ``k`` the structure stores
  ``height(k) − i`` entries for its ``i``-th column; this must equal
  (or, amalgamated, dominate) the re-derived count of that column;
* **N503 blok/cblk aggregation** — summing blok rows × panel widths
  minus the diagonal upper triangles must reproduce ``symbol.nnz()``:
  the blok arrays and the height-based formula are two representations
  of one factor.

Checks (``verify_dag_costs``):

* **N504 per-task flops** — every 2D task's flop annotation equals the
  cost model applied to *re-derived* GEMM dimensions;
* **N505 couple coverage** — the DAG's update tasks are exactly the
  (source, facing) couples enumerated *per target* through
  ``face_ptr``/``face_list`` — a different traversal than the builder's
  per-source ``update_couples``;
* **N506 total flops** — the DAG's flop total matches the independent
  total (any granularity, both LDLᵀ update conventions accepted);
* **N509 2D row split** — when the DAG declares a row-block split
  (``split_rows``), the parts of every couple must tile its re-derived
  tail ``[0, m)`` exactly (start at 0, end at ``m``, contiguous) and
  each part's flop annotation must match the part-aware cost model
  (:func:`repro.kernels.cost.flops_update_part`).  A split whose couple
  maps were not rebuilt after the symbol changed fails here
  (``make selftest`` injects one via ``--inject stale-split``).

Checks (``verify_couple_cache``):

* **N507 map contents** — every cached couple's ``(i0, i1, rows_local,
  cols_local)`` equals a re-derivation from the symbol through
  *different primitives* (``count_nonzero``/``isin`` instead of the
  builder's ``searchsorted``), so a shared bug cannot hide;
* **N508 couple coverage** — the cache holds exactly the couples the
  facing index enumerates (per target), and each panel's cached facing
  list matches.  A cache that silently went stale against its symbol —
  the one failure mode that would corrupt factors without any schedule
  looking wrong — fails here (``make selftest`` injects one).
"""

from __future__ import annotations

import numpy as np

from repro.dag.tasks import TaskDAG, TaskKind
from repro.kernels.cost import (
    complex_multiplier,
    flops_panel,
    flops_update,
    flops_update_part,
)
from repro.symbolic.analyze import AnalysisResult
from repro.symbolic.colcount import column_counts
from repro.symbolic.etree import elimination_tree, postorder
from repro.symbolic.structures import SymbolMatrix
from repro.verify.report import Report

__all__ = [
    "verify_symbolic",
    "verify_dag_costs",
    "verify_couple_cache",
    "derive_couples_by_target",
    "skew_flops",
    "stale_couple_map",
    "stale_split",
]

_REL_TOL = 1e-9


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= _REL_TOL * max(abs(a), abs(b), 1.0)


# ----------------------------------------------------------------------
# Structure-level audit
# ----------------------------------------------------------------------
def verify_symbolic(
    matrix,
    result: AnalysisResult,
    *,
    exact: bool = True,
    max_reported: int = 25,
    name: str = "symbolic",
) -> Report:
    """Audit ``result`` against a from-scratch re-derivation.

    ``exact=True`` asserts equality everywhere and is correct when the
    analysis ran without amalgamation; with amalgamation the structure
    legitimately contains extra fill, so pass ``exact=False`` to check
    domination (structure ≥ re-derived counts) instead.
    """
    report = Report(name)
    sym = result.symbol
    n = sym.n

    # N500: the stored pattern is the permuted symmetrised input.
    fresh = (
        matrix.symmetrize_pattern().with_full_diagonal()
        .permute(result.perm.perm)
    )
    if not (
        np.array_equal(fresh.colptr, result.pattern.colptr)
        and np.array_equal(np.sort(fresh.rowind), np.sort(result.pattern.rowind))
    ):
        report.add(
            "N500",
            "analysis pattern differs from the permuted symmetrised "
            "input pattern recomputed from the original matrix",
        )
        return report  # everything below would chase a wrong pattern

    # Re-derive the elimination tree + column counts from the pattern.
    parent = elimination_tree(result.pattern)
    post = postorder(parent)
    counts = column_counts(result.pattern, parent, post)
    nnz_cc = int(counts.sum())

    # N501: nnz(L).
    nnz_sym = sym.nnz()
    if exact and nnz_sym != nnz_cc:
        report.add(
            "N501",
            f"symbol.nnz() = {nnz_sym} but the column-count sum is "
            f"{nnz_cc} (no amalgamation: they must agree exactly)",
        )
    elif not exact and nnz_sym < nnz_cc:
        report.add(
            "N501",
            f"symbol.nnz() = {nnz_sym} is below the column-count sum "
            f"{nnz_cc}: amalgamation may only add structural fill",
        )

    # N502: per-column counts panel by panel.
    n_bad = 0
    widths = np.diff(sym.cblk_ptr).astype(np.int64)
    heights = np.array(
        [sym.cblk_height(k) for k in range(sym.n_cblk)], dtype=np.int64
    )
    for k in range(sym.n_cblk):
        f = int(sym.cblk_ptr[k])
        stored = heights[k] - np.arange(widths[k], dtype=np.int64)
        derived = counts[f: f + int(widths[k])]
        bad = (
            np.flatnonzero(stored != derived)
            if exact
            else np.flatnonzero(stored < derived)
        )
        if bad.size:
            n_bad += int(bad.size)
            if report.count() <= max_reported:
                j = int(bad[0])
                rel = "!=" if exact else "<"
                report.add(
                    "N502",
                    f"panel {k}, column {f + j}: structure stores "
                    f"{int(stored[j])} entries {rel} re-derived count "
                    f"{int(derived[j])}",
                )
    report.stats["column_mismatches"] = n_bad

    # N503: blok-level aggregation vs the height-based nnz formula.
    sizes = (sym.blok_lrow - sym.blok_frow).astype(np.int64)
    nnz_blok = int(
        (sizes * widths[sym.blok_owner]).sum()
        - (widths * (widths - 1) // 2).sum()
    )
    lower = int((widths * (widths + 1) // 2 + widths * (heights - widths)).sum())
    if nnz_blok != lower:
        report.add(
            "N503",
            f"blok-level nnz {nnz_blok} disagrees with the cblk-level "
            f"formula {lower}: blok arrays and panel heights describe "
            "different factors",
        )

    report.stats["n"] = n
    report.stats["n_cblk"] = sym.n_cblk
    report.stats["nnz_colcount"] = nnz_cc
    report.stats["nnz_symbol"] = nnz_sym
    return report


# ----------------------------------------------------------------------
# DAG-cost audit
# ----------------------------------------------------------------------
def derive_couples_by_target(
    symbol: SymbolMatrix,
) -> dict[tuple[int, int], list[tuple[int, int]]]:
    """Update couples enumerated per *target* via the facing index.

    Returns ``{(src, tgt): [(m, n), ...]}``.  The builder enumerates
    couples per source panel by walking each panel's blok list; here we
    walk ``face_ptr``/``face_list`` (the in-edges of each target) and
    rebuild the same couples from the opposite direction, so a bug in
    either traversal shows up as a disagreement.
    """
    sizes = (symbol.blok_lrow - symbol.blok_frow).astype(np.int64)
    # Rows of owner k at-and-after blok b (the GEMM m dimension).
    suffix = np.empty(symbol.n_blok, dtype=np.int64)
    for k in range(symbol.n_cblk):
        b0, b1 = int(symbol.blok_ptr[k]), int(symbol.blok_ptr[k + 1])
        suffix[b0:b1] = np.cumsum(sizes[b0:b1][::-1])[::-1]

    couples: dict[tuple[int, int], list[tuple[int, int]]] = {}
    for t in range(symbol.n_cblk):
        prev_b, prev_owner = -2, -1
        for b in symbol.facing_bloks(t):
            b = int(b)
            k = int(symbol.blok_owner[b])
            if b == prev_b + 1 and prev_owner == k:
                # Consecutive blok of the same run: extend the couple.
                m, nn = couples[(k, t)][-1]
                couples[(k, t)][-1] = (m, nn + int(sizes[b]))
            else:
                couples.setdefault((k, t), []).append(
                    (int(suffix[b]), int(sizes[b]))
                )
            prev_b, prev_owner = b, k
    return couples


def verify_dag_costs(
    dag: TaskDAG,
    *,
    dtype=np.float64,
    max_reported: int = 25,
    name: str = "dag-costs",
) -> Report:
    """Audit ``dag``'s per-task flop/GEMM annotations against the symbol."""
    report = Report(name)
    sym = dag.symbol
    if sym is None:
        report.add("N505", "DAG carries no symbol; cannot re-derive costs")
        return report
    mult = complex_multiplier(dtype)
    widths = np.diff(sym.cblk_ptr).astype(np.int64)
    below = np.array(
        [sym.cblk_below(k) for k in range(sym.n_cblk)], dtype=np.int64
    )
    couples = derive_couples_by_target(sym)
    n_couples = sum(len(v) for v in couples.values())

    # Totals, accepted under either LDLᵀ update convention.
    panel_total = mult * sum(
        flops_panel(int(widths[k]), int(below[k]), dag.factotype)
        for k in range(sym.n_cblk)
    )
    upd_totals = []
    for recompute_ld in (False, True):
        upd_totals.append(
            mult
            * sum(
                flops_update(m, nn, int(widths[s]), dag.factotype,
                             recompute_ld=recompute_ld)
                for (s, t), mns in couples.items()
                for (m, nn) in mns
            )
        )
    dag_total = float(dag.flops.sum())
    if not any(_close(dag_total, panel_total + u) for u in upd_totals):
        report.add(
            "N506",
            f"DAG total flops {dag_total:.6g} matches neither "
            f"re-derived total ({panel_total + upd_totals[0]:.6g} or "
            f"{panel_total + upd_totals[1]:.6g} with recompute_ld)",
        )
    report.stats["tasks"] = dag.n_tasks
    report.stats["couples"] = n_couples
    report.stats["dag_flops"] = dag_total

    # Per-task checks only make sense for plain 2D DAGs (1d and fused
    # variants aggregate many kernels per task; the total check above
    # still covers them).
    is_update = dag.kind == TaskKind.UPDATE
    n_upd_tasks = int(is_update.sum())
    if dag.granularity != "2d" or TaskKind.SUBTREE in dag.kind:
        return report

    split = dag.split_rows is not None
    if split and (dag.row_lo is None or dag.row_hi is None):
        report.add(
            "N509",
            "DAG declares a 2D row split but carries no row_lo/row_hi "
            "part bounds",
        )
        return report
    if not split and n_upd_tasks != n_couples:
        report.add(
            "N505",
            f"DAG has {n_upd_tasks} update tasks but the facing index "
            f"enumerates {n_couples} couples",
        )

    remaining = {key: list(v) for key, v in couples.items()}
    # Split DAGs carry several parts per couple: collect them here and
    # audit the tiling per couple after the per-task loop.
    parts_of: dict[tuple[int, int], list[int]] = {}
    n_bad = 0

    def _flag(code: str, msg: str, task: int) -> None:
        nonlocal n_bad
        n_bad += 1
        if n_bad <= max_reported:
            report.add(code, msg, tasks=(task,))
        elif n_bad == max_reported + 1:
            report.add(code, "... further per-task findings suppressed")

    for t in range(dag.n_tasks):
        kind = TaskKind(int(dag.kind[t]))
        if kind == TaskKind.PANEL:
            k = int(dag.cblk[t])
            expect = mult * flops_panel(int(widths[k]), int(below[k]),
                                        dag.factotype)
            if not _close(float(dag.flops[t]), expect):
                _flag(
                    "N504",
                    f"panel task {t} (panel {k}) annotates "
                    f"{float(dag.flops[t]):.6g} flops; structure says "
                    f"{expect:.6g}",
                    t,
                )
        elif kind == TaskKind.UPDATE:
            s, tg = int(dag.cblk[t]), int(dag.target[t])
            if split:
                parts_of.setdefault((s, tg), []).append(t)
                continue
            m, nn, kk = int(dag.gemm_m[t]), int(dag.gemm_n[t]), int(dag.gemm_k[t])
            mns = remaining.get((s, tg), [])
            if (m, nn) not in mns:
                _flag(
                    "N505",
                    f"update task {t} ({s} -> {tg}, GEMM {m}x{nn}x{kk}) "
                    "matches no couple in the facing index",
                    t,
                )
                continue
            mns.remove((m, nn))
            if kk != int(widths[s]):
                _flag(
                    "N504",
                    f"update task {t} ({s} -> {tg}) has gemm_k={kk} but "
                    f"panel {s} is {int(widths[s])} wide",
                    t,
                )
                continue
            expected = [
                mult * flops_update(m, nn, kk, dag.factotype,
                                    recompute_ld=r)
                for r in (False, True)
            ]
            if not any(_close(float(dag.flops[t]), e) for e in expected):
                _flag(
                    "N504",
                    f"update task {t} ({s} -> {tg}) annotates "
                    f"{float(dag.flops[t]):.6g} flops; the cost model on "
                    f"the re-derived GEMM {m}x{nn}x{kk} says "
                    f"{expected[0]:.6g}",
                    t,
                )
    if split:
        row_lo, row_hi = dag.row_lo, dag.row_hi
        assert row_lo is not None and row_hi is not None
        for (s, tg), tasks in sorted(parts_of.items()):
            mns = remaining.get((s, tg), [])
            if not mns:
                _flag(
                    "N505",
                    f"split update tasks for couple {s} -> {tg} match no "
                    "couple in the facing index",
                    tasks[0],
                )
                continue
            m, nn = mns[0]
            mns.remove((m, nn))
            order = sorted(tasks, key=lambda u: int(row_lo[u]))
            los = [int(row_lo[u]) for u in order]
            his = [int(row_hi[u]) for u in order]
            tiles = (
                los[0] == 0
                and his[-1] == m
                and all(h > lo for lo, h in zip(los, his))
                and all(his[i] == los[i + 1] for i in range(len(order) - 1))
                and all(int(dag.gemm_m[u]) == h - lo
                        for u, lo, h in zip(order, los, his))
            )
            if not tiles:
                _flag(
                    "N509",
                    f"couple {s} -> {tg}: parts {list(zip(los, his))} do "
                    f"not tile the re-derived tail [0, {m}) (or gemm_m "
                    "disagrees with the part bounds)",
                    order[0],
                )
                continue
            for u, lo, h in zip(order, los, his):
                nn_u, kk = int(dag.gemm_n[u]), int(dag.gemm_k[u])
                if nn_u != nn or kk != int(widths[s]):
                    _flag(
                        "N504",
                        f"split update task {u} ({s} -> {tg}) has GEMM "
                        f"n={nn_u}, k={kk}; the re-derived couple says "
                        f"n={nn}, k={int(widths[s])}",
                        u,
                    )
                    continue
                expected = [
                    mult * flops_update_part(m, nn, kk, dag.factotype,
                                             lo, h, recompute_ld=r)
                    for r in (False, True)
                ]
                if not any(_close(float(dag.flops[u]), e) for e in expected):
                    _flag(
                        "N509",
                        f"split update task {u} ({s} -> {tg}, rows "
                        f"[{lo}, {h})) annotates "
                        f"{float(dag.flops[u]):.6g} flops; the part-aware "
                        f"cost model says {expected[0]:.6g}",
                        u,
                    )

    leftovers = sum(len(v) for v in remaining.values())
    if leftovers:
        pair = next(key for key, v in remaining.items() if v)
        report.add(
            "N505",
            f"{leftovers} couple(s) in the facing index have no DAG "
            f"update task (first: {pair[0]} -> {pair[1]})",
        )
    report.stats["flop_mismatches"] = n_bad
    return report


# ----------------------------------------------------------------------
# Couple-index-cache audit
# ----------------------------------------------------------------------
def verify_couple_cache(
    symbol: SymbolMatrix,
    cache,
    *,
    max_reported: int = 25,
    name: str = "couple-cache",
) -> Report:
    """Audit a :class:`repro.kernels.indexcache.CoupleMapCache`.

    The cache's scatter maps steer every numeric scatter-add, so a
    stale or corrupted entry writes contributions to the wrong factor
    entries while every schedule still looks feasible.  This re-derives
    each map from ``symbol`` through primitives disjoint from the
    builder's (``count_nonzero`` for the slice bounds, ``isin`` +
    ``flatnonzero`` for the row maps — the builder uses
    ``searchsorted``), and re-enumerates the couple set per *target*
    through the facing index (the builder walks per source).
    """
    report = Report(name)
    ptr = symbol.cblk_ptr
    rows_of = [symbol.cblk_rows(k) for k in range(symbol.n_cblk)]

    # N508: coverage — cached couples vs the facing-index enumeration.
    derived = derive_couples_by_target(symbol)
    want = set(derived.keys())
    have = set(cache.maps.keys())
    for k, t in sorted(have - want):
        report.add(
            "N508",
            f"cache holds couple {k} -> {t} but the facing index "
            "enumerates no such couple",
        )
    for k, t in sorted(want - have):
        report.add(
            "N508",
            f"facing index enumerates couple {k} -> {t} but the cache "
            "has no map for it",
        )
    for k in range(symbol.n_cblk):
        expect = np.sort(np.array(
            [t for (s, t) in sorted(want) if s == k], dtype=np.int64
        ))
        got = np.sort(np.asarray(cache.facing[k], dtype=np.int64))
        if not np.array_equal(expect, got):
            report.add(
                "N508",
                f"panel {k}'s cached facing list {got.tolist()} differs "
                f"from the facing-index targets {expect.tolist()}",
            )

    # N507: per-couple map contents, re-derived by different means.
    n_bad = 0
    for (k, t) in sorted(have & want):
        cm = cache.maps[(k, t)]
        w = symbol.cblk_width(k)
        rk = rows_of[k][w:]
        i0 = int(np.count_nonzero(rk < ptr[t]))
        i1 = int(np.count_nonzero(rk < ptr[t + 1]))
        rows_t = rows_of[t]
        exp_rows = np.flatnonzero(np.isin(rows_t, rk[i0:]))
        exp_cols = rk[i0:i1] - ptr[t]
        bad = (
            cm.i0 != i0
            or cm.i1 != i1
            or cm.rk_size != rk.size
            or not np.array_equal(cm.rows_local, exp_rows)
            or not np.array_equal(cm.cols_local, exp_cols)
        )
        if bad:
            n_bad += 1
            if n_bad <= max_reported:
                report.add(
                    "N507",
                    f"couple {k} -> {t}: cached maps (i0={cm.i0}, "
                    f"i1={cm.i1}, rk_size={cm.rk_size}) disagree with "
                    f"the re-derivation (i0={i0}, i1={i1}, "
                    f"rk_size={rk.size}) or the row/column maps differ",
                )
            elif n_bad == max_reported + 1:
                report.add("N507", "... further map findings suppressed")
    report.stats["couples_cached"] = len(have)
    report.stats["couples_derived"] = len(want)
    report.stats["map_mismatches"] = n_bad
    return report


# ----------------------------------------------------------------------
# Fault injection (for --inject self-tests)
# ----------------------------------------------------------------------
def stale_couple_map(cache) -> tuple[object, tuple[int, int]]:
    """Return a corrupted clone of ``cache`` (stale-map injection).

    Shifts one entry of the largest couple's ``rows_local`` by one —
    exactly the drift a symbol rebuilt after a cache was attached would
    produce, and the corruption N507 exists to catch.  Returns the
    corrupted cache and the affected couple.
    """
    from repro.kernels.indexcache import CoupleMap

    if not cache.maps:
        raise ValueError("cache holds no couples to corrupt")
    key = max(cache.maps, key=lambda kt: cache.maps[kt].rows_local.size)
    cm = cache.maps[key]
    rows = cm.rows_local.copy()
    rows[rows.size // 2] += 1
    out = cache.clone()
    out.maps[key] = CoupleMap(cm.i0, cm.i1, rows, cm.cols_local, cm.rk_size)
    return out, key


def skew_flops(dag: TaskDAG, factor: float = 1.5) -> tuple[TaskDAG, int]:
    """Return a copy of ``dag`` with one update task's flops skewed.

    Picks the largest update task and multiplies its flop annotation by
    ``factor`` — exactly the drift N504 exists to catch.  Returns the
    corrupted DAG and the task id.
    """
    is_update = dag.kind == TaskKind.UPDATE
    if not is_update.any():
        raise ValueError("DAG has no update tasks to skew")
    t = int(np.flatnonzero(is_update)[np.argmax(dag.flops[is_update])])
    flops = dag.flops.copy()
    flops[t] *= factor
    out = TaskDAG(
        kind=dag.kind,
        cblk=dag.cblk,
        target=dag.target,
        flops=flops,
        gemm_m=dag.gemm_m,
        gemm_n=dag.gemm_n,
        gemm_k=dag.gemm_k,
        succ_ptr=dag.succ_ptr,
        succ_list=dag.succ_list,
        mutex=dag.mutex,
        granularity=dag.granularity,
        symbol=dag.symbol,
        factotype=dag.factotype,
        fused_components=dag.fused_components,
        row_lo=dag.row_lo,
        row_hi=dag.row_hi,
        split_rows=dag.split_rows,
    )
    out.phase = dag.phase
    return out, t


def stale_split(dag: TaskDAG) -> tuple[TaskDAG, int]:
    """Return a copy of ``dag`` with one 2D part's row bounds gone stale.

    Picks a couple that was split into several parts and extends the
    first part's ``row_hi`` by one row *without* touching ``gemm_m`` or
    the flop annotation — exactly the drift a symbol re-split without
    rebuilding its couple maps produces.  The corrupted DAG fails both
    H110 (hazard pass: the parts no longer tile the couple contiguously
    and ``gemm_m`` disagrees with the bounds) and N509 (symbolic pass).
    Returns the corrupted DAG and the affected task id.
    """
    if dag.split_rows is None or dag.row_lo is None or dag.row_hi is None:
        raise ValueError("DAG declares no 2D row split to corrupt")
    is_update = dag.kind == TaskKind.UPDATE
    K = int(dag.target.max()) + 1 if dag.n_tasks else 1
    keys = dag.cblk.astype(np.int64) * K + dag.target.astype(np.int64)
    keys[~is_update] = -1
    uniq, counts = np.unique(keys[is_update], return_counts=True)
    multi = uniq[counts > 1]
    if multi.size == 0:
        raise ValueError("no couple is split into multiple parts")
    members = np.flatnonzero(keys == int(multi[0]))
    t = int(members[np.argmin(dag.row_lo[members])])
    row_hi = dag.row_hi.copy()
    row_hi[t] += 1
    out = TaskDAG(
        kind=dag.kind,
        cblk=dag.cblk,
        target=dag.target,
        flops=dag.flops,
        gemm_m=dag.gemm_m,
        gemm_n=dag.gemm_n,
        gemm_k=dag.gemm_k,
        succ_ptr=dag.succ_ptr,
        succ_list=dag.succ_list,
        mutex=dag.mutex,
        granularity=dag.granularity,
        symbol=dag.symbol,
        factotype=dag.factotype,
        fused_components=dag.fused_components,
        row_lo=dag.row_lo,
        row_hi=row_hi,
        split_rows=dag.split_rows,
    )
    out.phase = dag.phase
    return out, t
