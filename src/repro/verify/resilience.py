"""Resilience auditor (R6xx): audit fault/recovery pairing in a trace.

The resilience layer (:mod:`repro.resilience`) claims that every
injected fault is absorbed by a recovery action and that the recovered
schedule is still honest: failed attempts never appear as completions,
re-executions respect their backoff, and a blacklisted device stays
dead.  This pass re-checks those claims from the
:class:`~repro.runtime.tracing.ExecutionTrace` alone — it never looks at
simulator internals, so a bookkeeping bug in the recovery machinery
cannot hide itself.

Checks:

* **R601 fault without recovery** — every
  :class:`~repro.runtime.tracing.FaultEvent` pairs with exactly one
  :class:`~repro.runtime.tracing.RecoveryEvent` on the same
  ``(task, cblk, resource, attempt)`` key, decided no earlier than the
  fault (stragglers are absorbed *at* their start, every other kind at
  the end of the failed attempt);
* **R602 double completion** — no task completes twice without an
  interleaved fault event invalidating the first completion (S201
  already demands "exactly once"; this is the resilience-shaped
  corruption where a re-execution is recorded on top of a success);
* **R603 orphan recovery** — a recovery that answers no recorded fault
  is bookkeeping fiction;
* **R604 backoff accounting** — a re-executed task's (single) trace
  event starts no earlier than its last recovery decision plus the
  imposed backoff delay, a retried link transfer's eventual data event
  respects the same bound, and the trace makespan covers every fault
  window (retries cannot be free);
* **R605 dead device use** — after a ``gpu-loss`` fault, no task event
  and no transfer lands on that device.

``check_double_complete=False`` disables R602/R604 for traces whose
task ids are not unique by construction (the distributed simulator
reuses ids across accumulate tasks).
"""

from __future__ import annotations

from repro.runtime.tracing import ExecutionTrace, TraceEvent
from repro.verify.report import Report

__all__ = ["verify_resilience", "drop_recovery", "double_complete"]


def _pair_key(task: int, cblk: int, resource: str, attempt: int):
    return (task, cblk, resource, attempt)


def verify_resilience(
    trace: ExecutionTrace,
    dag=None,
    *,
    check_double_complete: bool = True,
    tol: float = 1e-12,
    max_reported: int = 25,
    name: str = "resilience",
) -> Report:
    """Audit ``trace``'s fault and recovery events (R6xx)."""
    report = Report(name)
    faults = trace.sorted_fault_events()
    recoveries = trace.sorted_recovery_events()
    report.stats["faults"] = float(len(faults))
    report.stats["recoveries"] = float(len(recoveries))

    # ------------------------------------------------------------- R601
    # Greedy pairing: each fault consumes the earliest unused recovery
    # with its key that was decided no earlier than the fault.
    unused: dict[tuple, list[int]] = {}
    for i, r in enumerate(recoveries):
        unused.setdefault(
            _pair_key(r.task, r.cblk, r.resource, r.attempt), []
        ).append(i)
    consumed = [False] * len(recoveries)
    matched: dict[int, int] = {}  # fault index -> recovery index
    n_unpaired = 0
    for fi, f in enumerate(faults):
        # A straggler is absorbed in place when the attempt *starts*;
        # every other fault is answered once the failed attempt ends.
        earliest = (f.start if f.kind == "straggler" else f.end) - tol
        found = None
        for ri in unused.get(_pair_key(f.task, f.cblk, f.resource,
                                       f.attempt), []):
            if not consumed[ri] and recoveries[ri].time >= earliest:
                found = ri
                break
        if found is None:
            n_unpaired += 1
            if n_unpaired <= max_reported:
                report.add(
                    "R601",
                    f"{f.kind} fault on {f.resource} at t={f.end:.6g} "
                    f"(task {f.task}, cblk {f.cblk}, attempt {f.attempt}) "
                    f"has no matching recovery",
                    tasks=(f.task,) if f.task >= 0 else (),
                )
        else:
            consumed[found] = True
            matched[fi] = found
    if n_unpaired > max_reported:
        report.add("R601", f"... further {n_unpaired - max_reported} "
                           "unpaired fault(s) suppressed")

    # ------------------------------------------------------------- R603
    orphans = [r for ri, r in enumerate(recoveries) if not consumed[ri]]
    for r in orphans[:max_reported]:
        report.add(
            "R603",
            f"{r.kind} recovery on {r.resource} at t={r.time:.6g} "
            f"(task {r.task}, cblk {r.cblk}, attempt {r.attempt}) "
            f"answers no recorded fault",
            tasks=(r.task,) if r.task >= 0 else (),
        )
    if len(orphans) > max_reported:
        report.add("R603", f"... further {len(orphans) - max_reported} "
                           "orphan recover(ies) suppressed")

    events_of: dict[int, list[TraceEvent]] = {}
    for e in trace.sorted_events():
        events_of.setdefault(e.task, []).append(e)

    # ------------------------------------------------------------- R602
    if check_double_complete:
        fault_ends: dict[int, list[float]] = {}
        for f in faults:
            fault_ends.setdefault(f.task, []).append(f.end)
        for t, evs in events_of.items():
            for a, b in zip(evs, evs[1:]):
                between = any(
                    a.end - tol <= fe <= b.start + tol
                    for fe in fault_ends.get(t, ())
                )
                if not between:
                    report.add(
                        "R602",
                        f"task {t} completes twice (at t={a.end:.6g} on "
                        f"{a.resource} and t={b.end:.6g} on {b.resource}) "
                        f"with no interleaved fault",
                        tasks=(t,),
                    )

    # ------------------------------------------------------------- R604
    # "Retries cannot be free": the trace's timeline must extend to
    # cover every fault window.  The horizon includes data/transfer
    # events — a trailing d2h writeback may retry past the last task.
    horizon = trace.makespan
    if trace.data_events:
        horizon = max(horizon, max(d.end for d in trace.data_events))
    if trace.transfers:
        horizon = max(horizon, max(t.end for t in trace.transfers))
    for fi, f in enumerate(faults):
        if horizon + tol < f.end:
            report.add(
                "R604",
                f"trace horizon {horizon:.6g} does not cover the "
                f"{f.kind} fault window ending at t={f.end:.6g} "
                f"(retries cannot be free)",
                tasks=(f.task,) if f.task >= 0 else (),
            )
    if check_double_complete:
        # A re-executed task must start after its recovery's backoff.
        last_bound: dict[int, float] = {}
        for fi, ri in matched.items():
            f, r = faults[fi], recoveries[ri]
            if f.task < 0 or r.kind == "absorb":
                continue
            bound = r.time + r.delay_s
            if bound > last_bound.get(f.task, -1.0):
                last_bound[f.task] = bound
        for t, bound in last_bound.items():
            evs = events_of.get(t, [])
            if len(evs) == 1 and evs[0].start + tol < bound:
                report.add(
                    "R604",
                    f"task {t} starts at t={evs[0].start:.6g}, before its "
                    f"recovery decision plus backoff (t={bound:.6g})",
                    tasks=(t,),
                )
    # A retried link transfer's successful data event obeys the bound.
    # Devices that were later lost are exempt: the loss cancels queued
    # inbound transfers, including a retry's eventual success.
    lost_gpus = {
        f.resource for f in faults if f.kind == "gpu-loss" and f.task < 0
    }
    for fi, ri in matched.items():
        f, r = faults[fi], recoveries[ri]
        if f.kind != "transfer-fail" or not f.resource.startswith("link"):
            continue
        try:
            gpu = int(f.resource[4:])
        except ValueError:
            continue
        if f"gpu{gpu}" in lost_gpus:
            continue
        bound = r.time + r.delay_s
        landed = [
            d for d in trace.data_events
            if d.cblk == f.cblk and d.gpu == gpu and d.kind in ("h2d", "d2h")
            and d.start >= bound - tol
        ]
        if not landed:
            report.add(
                "R604",
                f"retried transfer of panel {f.cblk} on {f.resource} "
                f"(attempt {f.attempt}) has no data event at or after "
                f"its backoff bound t={bound:.6g}",
            )

    # ------------------------------------------------------------- R605
    for f in faults:
        if f.kind != "gpu-loss" or f.task >= 0:
            continue  # per-task gpu-loss faults are covered by pairing
        dead = f.resource
        try:
            gpu = int(dead[3:])
        except ValueError:
            continue
        for e in trace.events:
            # GPU task events carry the stream lane ("gpu0s1"); both the
            # bare device name and its streams are dead.
            if (e.resource == dead or e.resource.startswith(dead + "s")) \
                    and e.end > f.end + tol:
                report.add(
                    "R605",
                    f"task {e.task} runs on {dead} until t={e.end:.6g}, "
                    f"after the device was lost at t={f.end:.6g}",
                    tasks=(e.task,),
                )
        for d in trace.data_events:
            if d.gpu == gpu and d.kind in ("h2d", "d2h") \
                    and d.start > f.end + tol:
                report.add(
                    "R605",
                    f"{d.kind} of panel {d.cblk} on link {gpu} starts at "
                    f"t={d.start:.6g}, after the device was lost at "
                    f"t={f.end:.6g}",
                )

    retried = {f.task for f in faults if f.task >= 0}
    report.stats["tasks_hit"] = float(len(retried))
    return report


# ----------------------------------------------------------------------
# fault injectors (verify-the-verifier)
# ----------------------------------------------------------------------
def drop_recovery(trace: ExecutionTrace) -> ExecutionTrace:
    """Corrupt ``trace`` by deleting one recovery event.

    The returned trace must fail R601 (its fault is now unanswered).
    Raises ``ValueError`` when the trace has no recovery events.
    """
    if not trace.recovery_events:
        raise ValueError("trace has no recovery events to drop")
    victim = trace.sorted_recovery_events()[0]
    kept = [r for r in trace.recovery_events if r is not victim]
    return ExecutionTrace(
        events=list(trace.events),
        transfers=list(trace.transfers),
        data_events=list(trace.data_events),
        fault_events=list(trace.fault_events),
        recovery_events=kept,
    )


def double_complete(trace: ExecutionTrace) -> ExecutionTrace:
    """Corrupt ``trace`` by recording one task's completion twice.

    The duplicate lands after the makespan with no interleaved fault, so
    the returned trace must fail R602.  Raises ``ValueError`` when the
    trace has no task events.
    """
    if not trace.events:
        raise ValueError("trace has no task events to duplicate")
    fault_tasks = {f.task for f in trace.fault_events}
    orig = next(
        (e for e in trace.sorted_events() if e.task not in fault_tasks),
        None,
    )
    if orig is None:
        raise ValueError("every task already has fault events; nothing "
                         "to duplicate cleanly")
    span = trace.makespan
    clone = TraceEvent(orig.task, orig.resource, span,
                       span + max(orig.duration, 1e-12))
    return ExecutionTrace(
        events=list(trace.events) + [clone],
        transfers=list(trace.transfers),
        data_events=list(trace.data_events),
        fault_events=list(trace.fault_events),
        recovery_events=list(trace.recovery_events),
    )
