"""Driver behind ``python -m repro verify``.

Runs the eight static-analysis passes — DAG hazard coverage, simulated
schedule feasibility, the M4xx memory/data-movement audit, the N5xx
symbolic-structure audit, the R6xx resilience audit (a seeded
fault-injection run whose recovered trace must satisfy the fault/
recovery pairing rules *and* the schedule and memory audits), the R7xx
graceful-degradation audit (a seeded limplock run with health
monitoring and hedging armed, whose trace must satisfy the exactly-once
commit, legal-transition, quarantine-respect, and hedge-accounting
rules, plus a monitoring-off identity check), the C7xx concurrency
audit (a live sync-instrumented threaded factorization whose trace
must satisfy the happens-before race checks, plus the RV4xx
lock-discipline lint over the runtime sources), the D8xx determinism
audit (a seeded same-seed double-run of the machine simulator and a
kernel burst whose canonical trace fingerprints must match
bit-for-bit, with tie-break totality and RNG-draw provenance checks on
top), the A9xx adaptive-model audit (a cold + warm double-run of the
real threaded runtime under the ``"adaptive"`` scheduler whose stamped
duration-model provenance must match the traces' own task events), and
the project linters (RV3xx plus the RV5xx event-loop-discipline lint
over the simulator sources) — on a chosen matrix and prints one report
per pass.  Exit status is 0 iff every
pass is clean, which is what the ``make verify`` gate and CI consume.

``--inject`` deliberately corrupts the artifact under test (drops a DAG
edge, an h2d transfer, a recovery event, or a sync event; overlaps two
trace events; breaks a mutex window; overflows device residency; skews
a task's flop count; leaves a 2D row-split part's bounds stale;
records a completion twice; unlocks a scatter;
swallows a wakeup; collapses a heap tie-break; forges the replay RNG
provenance; erases the sequence stamps; double-commits a hedged task;
dispatches onto a quarantined worker; forges an illegal health
transition) to demonstrate that the passes actually catch what they
claim to catch; an injected run is *expected* to exit non-zero.
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path
from typing import Any

import numpy as np

from repro.verify.report import Report

__all__ = ["run_verify", "add_verify_arguments"]

_GENERATORS = {
    "lap2d": ("grid_laplacian_2d", {"jitter": 0.05}),
    "lap3d": ("grid_laplacian_3d", {"jitter": 0.05}),
    "random": ("random_pattern_spd", {"locality": 0.4}),
    "elasticity": ("elasticity_like_3d", {}),
    "helmholtz": ("helmholtz_like_2d", {}),
    "shell": ("shell_like_2d", {}),
}

GRANULARITIES = ("2d", "1d", "1d-left", "subtree")


def add_verify_arguments(p: argparse.ArgumentParser) -> None:
    """Attach the ``verify`` subcommand's arguments to parser ``p``."""
    p.add_argument(
        "--matrix", default="lap2d",
        help="generator name (%s) or a MatrixMarket file path"
             % "/".join(sorted(_GENERATORS)),
    )
    p.add_argument("--size", type=int, default=20,
                   help="generator size parameter (default 20)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--factotype", default="llt",
                   choices=["llt", "ldlt", "lu"])
    p.add_argument("--split", type=int, default=32,
                   help="panel split width for the symbolic step")
    p.add_argument("--granularity", default="all",
                   choices=("all",) + GRANULARITIES,
                   help="which DAG granularities the hazard pass covers")
    p.add_argument("--policy", default="parsec",
                   choices=["native", "starpu", "parsec", "all"],
                   help="scheduler policy for the schedule pass")
    p.add_argument("--cores", type=int, default=4)
    p.add_argument("--gpus", type=int, default=1)
    p.add_argument("--streams", type=int, default=2)
    p.add_argument("--no-hazards", action="store_true")
    p.add_argument("--no-schedule", action="store_true")
    p.add_argument("--no-memory", action="store_true",
                   help="skip the M4xx data-movement audit")
    p.add_argument("--no-symbolic", action="store_true",
                   help="skip the N5xx symbolic-structure audit")
    p.add_argument("--no-resilience", action="store_true",
                   help="skip the R6xx fault-injection/recovery audit")
    p.add_argument("--no-health", action="store_true",
                   help="skip the R7xx graceful-degradation/hedging audit")
    p.add_argument("--no-concurrency", action="store_true",
                   help="skip the C7xx happens-before / RV4xx "
                        "lock-discipline concurrency audit")
    p.add_argument("--no-determinism", action="store_true",
                   help="skip the D8xx same-seed replay/fingerprint "
                        "determinism audit")
    p.add_argument("--no-adaptive", action="store_true",
                   help="skip the A9xx adaptive-scheduler model-stamp "
                        "audit")
    p.add_argument("--no-lint", action="store_true")
    p.add_argument("--redundant", action="store_true",
                   help="also report transitive (redundant) DAG edges")
    p.add_argument("--lint-path", default=None,
                   help="directory to lint (default: the repro package)")
    p.add_argument(
        "--inject", default="none",
        choices=["none", "drop-edge", "overlap-trace", "break-mutex",
                 "drop-transfer", "overflow-residency", "skew-flops",
                 "stale-cache", "stale-split", "drop-recovery",
                 "double-complete",
                 "drop-sync-event", "unlocked-scatter", "swallow-wakeup",
                 "reorder-ties", "reseed-midrun", "drop-seq",
                 "double-commit-hedge", "steal-from-quarantined",
                 "illegal-transition", "skew-model"],
        help="fault injection self-test (expected to FAIL the run)",
    )
    p.add_argument("-v", "--verbose", action="store_true",
                   help="also print info-severity findings")


def _load(args: argparse.Namespace) -> Any:
    from repro.sparse import generators
    from repro.sparse.io import read_matrix_market

    if args.matrix in _GENERATORS:
        fn_name, kw = _GENERATORS[args.matrix]
        fn = getattr(generators, fn_name)
        kw = dict(kw)
        if "seed" in fn.__code__.co_varnames:
            kw["seed"] = args.seed
        if args.matrix == "random":
            return fn(args.size, 6.0, **kw)
        return fn(args.size, **kw)
    if not Path(args.matrix).exists():
        raise SystemExit(
            f"--matrix {args.matrix!r} is neither a generator name "
            f"({'/'.join(sorted(_GENERATORS))}) nor an existing file"
        )
    return read_matrix_market(args.matrix)


def _hazard_pass(args: argparse.Namespace, symbol: Any,
                 reports: list[Report]) -> None:
    from repro.dag import build_dag
    from repro.verify.hazards import analyze_hazards, drop_edge

    grans = GRANULARITIES if args.granularity == "all" else (args.granularity,)
    injected = args.inject == "drop-edge"
    for gran in grans:
        if gran == "subtree":
            dag = build_dag(symbol, args.factotype,
                            fuse_subtree_flops=1e5)
        else:
            dag = build_dag(symbol, args.factotype, granularity=gran)
        label = gran
        if injected and dag.n_edges:
            rng = np.random.default_rng(args.seed)
            dag = drop_edge(dag, int(rng.integers(dag.n_edges)))
            label += "+drop-edge"
        t0 = time.perf_counter()
        rep = analyze_hazards(dag, find_redundant=args.redundant)
        rep.name = f"hazards[{label}]"
        rep.stats["seconds"] = time.perf_counter() - t0
        reports.append(rep)


def _schedule_pass(args: argparse.Namespace, symbol: Any,
                   reports: list[Report]) -> None:
    from repro.dag import build_dag
    from repro.machine import mirage, simulate
    from repro.runtime import get_policy
    from repro.runtime.tracing import ExecutionTrace, TraceEvent
    from repro.verify.memory import (
        drop_transfer,
        overflow_residency,
        verify_memory,
    )
    from repro.verify.schedule import verify_schedule

    policies = (
        ["native", "starpu", "parsec"] if args.policy == "all"
        else [args.policy]
    )
    machine = mirage(
        n_cores=args.cores, n_gpus=args.gpus,
        streams_per_gpu=args.streams if args.gpus else 1,
    )
    memory_inject = args.inject in ("drop-transfer", "overflow-residency")
    if memory_inject and args.gpus < 1:
        raise SystemExit(f"--inject {args.inject} needs at least one GPU")
    for name in policies:
        if memory_inject:
            # Force GPU offload so the trace has transfers to corrupt —
            # the default thresholds keep small test problems CPU-only.
            pol = get_policy(name, gpu_flops_threshold=1e3)
        else:
            pol = get_policy(name)
        dag = build_dag(
            symbol, args.factotype,
            granularity=pol.traits.granularity,
            recompute_ld=pol.traits.recompute_ld,
        )
        r = simulate(dag, machine, pol)
        trace = r.trace
        label = name
        if args.inject == "overlap-trace" and len(trace.events) >= 2:
            # Shift the second event of the busiest CPU back onto the
            # first — a textbook double-booking of one worker.
            by_res = trace.events_by_resource()
            cpu = max(
                (res for res in by_res if res.startswith("cpu")),
                key=lambda res: len(by_res[res]), default=None,
            )
            if cpu and len(by_res[cpu]) >= 2:
                a, b = by_res[cpu][0], by_res[cpu][1]
                moved = TraceEvent(b.task, b.resource,
                                   a.start + 0.25 * a.duration,
                                   a.start + 0.25 * a.duration + b.duration)
                trace = ExecutionTrace(
                    events=[moved if e is b else e for e in trace.events],
                    transfers=trace.transfers,
                )
                label += "+overlap-trace"
        elif args.inject == "break-mutex":
            # Start every update of one mutex group at the same instant.
            groups = {}
            for e in trace.events:
                g = int(dag.mutex[e.task])
                if g >= 0:
                    groups.setdefault(g, []).append(e)
            big = max(groups.values(), key=len, default=[])
            if len(big) >= 2:
                t0 = min(e.start for e in big)
                clones = {e.task: TraceEvent(e.task, e.resource, t0,
                                             t0 + e.duration)
                          for e in big}
                trace = ExecutionTrace(
                    events=[clones.get(e.task, e) for e in trace.events],
                    transfers=trace.transfers,
                )
                label += "+break-mutex"
        rep = verify_schedule(dag, trace)
        rep.name = f"schedule[{label}]"
        rep.stats["makespan_ms"] = r.makespan * 1e3
        reports.append(rep)

        if args.no_memory:
            continue
        mem_label = name
        mem_trace = trace
        if args.inject == "drop-transfer":
            try:
                mem_trace = drop_transfer(trace, dag)
                mem_label += "+drop-transfer"
            except ValueError as exc:
                raise SystemExit(
                    f"--inject drop-transfer: {exc} (policy {name}; "
                    "a larger --size makes the scheduler offload)"
                ) from exc
        elif args.inject == "overflow-residency":
            try:
                mem_trace = overflow_residency(trace, machine)
                mem_label += "+overflow-residency"
            except ValueError as exc:
                raise SystemExit(
                    f"--inject overflow-residency: {exc} (policy {name}; "
                    "a larger --size makes the scheduler offload)"
                ) from exc
        t0 = time.perf_counter()
        mrep = verify_memory(dag, mem_trace, machine)
        mrep.name = f"memory[{mem_label}]"
        mrep.stats["seconds"] = time.perf_counter() - t0
        reports.append(mrep)


def _resilience_pass(args: argparse.Namespace, symbol: Any,
                     reports: list[Report]) -> None:
    """R6xx: run a seeded fault scenario, audit the recovered trace.

    The scenario crashes CPU worker 0 on its first task, slows one task
    down 3x, sprinkles a 2% transient task-fault rate, and (with GPUs)
    kills device 0 part-way through a clean run's makespan.  The
    recovered trace must pass :func:`verify_resilience` *and* the
    regular schedule + memory audits — recovery is only correct if the
    schedule it produces is still feasible.
    """
    from repro.dag import build_dag
    from repro.machine import mirage, simulate
    from repro.resilience import FaultModel, FaultSpec, RecoveryPolicy
    from repro.runtime import get_policy
    from repro.verify.memory import verify_memory
    from repro.verify.resilience import (
        double_complete,
        drop_recovery,
        verify_resilience,
    )
    from repro.verify.schedule import verify_schedule

    policies = (
        ["native", "starpu", "parsec"] if args.policy == "all"
        else [args.policy]
    )
    machine = mirage(
        n_cores=args.cores, n_gpus=args.gpus,
        streams_per_gpu=args.streams if args.gpus else 1,
    )
    def _policy(name: str):
        # Low offload threshold so small test problems exercise the GPU
        # paths (same idiom as the memory-injection runs above); the
        # native policy is CPU-only and takes no threshold.
        if name == "native":
            return get_policy(name)
        return get_policy(name, gpu_flops_threshold=1e3)

    for name in policies:
        pol = _policy(name)
        dag = build_dag(
            symbol, args.factotype,
            granularity=pol.traits.granularity,
            recompute_ld=pol.traits.recompute_ld,
        )
        clean = simulate(dag, machine, pol)
        specs = [
            FaultSpec("worker-crash", time=0.0, resource=0),
            FaultSpec("straggler", time=0.0, factor=3.0),
        ]
        if args.gpus >= 1:
            specs.append(FaultSpec("gpu-loss", time=0.3 * clean.makespan,
                                   resource=0))
        faults = FaultModel(specs, seed=args.seed, task_fail_rate=0.02)
        r = simulate(dag, machine, _policy(name),
                     faults=faults, recovery=RecoveryPolicy())
        trace = r.trace

        t0 = time.perf_counter()
        rep = verify_resilience(trace, dag)
        rep.name = f"resilience[{name}]"
        rep.stats["seconds"] = time.perf_counter() - t0
        rep.stats["faults_injected"] = float(r.n_faults)
        rep.stats["reexecuted"] = float(r.n_reexecuted)
        rep.stats["makespan_ms"] = r.makespan * 1e3
        rep.stats["clean_makespan_ms"] = clean.makespan * 1e3
        reports.append(rep)

        srep = verify_schedule(dag, trace)
        srep.name = f"schedule[{name}+faults]"
        reports.append(srep)
        if not args.no_memory:
            mrep = verify_memory(dag, trace, machine)
            mrep.name = f"memory[{name}+faults]"
            reports.append(mrep)

        if args.inject in ("drop-recovery", "double-complete"):
            corrupt = (drop_recovery if args.inject == "drop-recovery"
                       else double_complete)
            try:
                bad = corrupt(trace)
            except ValueError as exc:
                raise SystemExit(
                    f"--inject {args.inject}: {exc} (policy {name})"
                ) from exc
            brep = verify_resilience(bad, dag)
            brep.name = f"resilience[{name}+{args.inject}]"
            reports.append(brep)


_HEALTH_INJECTS = ("double-commit-hedge", "steal-from-quarantined",
                   "illegal-transition")


def _health_pass(args: argparse.Namespace, symbol: Any,
                 reports: list[Report]) -> None:
    """R7xx: run a seeded limplock scenario, audit degradation/hedging.

    A persistent limplock slows CPU worker 0 by 50x for the rest of the
    run; health monitoring must walk it down the escalation chain into
    quarantine, and hedging must duplicate its stuck tasks on healthy
    workers with exactly-once commits.  A monitoring-off run of the same
    configuration is audited first — it must carry zero health or hedge
    events (the R705 identity).
    """
    from repro.dag import build_dag
    from repro.machine import mirage, simulate
    from repro.resilience import FaultModel, FaultSpec, HealthPolicy
    from repro.runtime import get_policy
    from repro.verify.health import (
        double_commit_hedge,
        illegal_transition,
        steal_from_quarantined,
        verify_health,
    )

    name = args.policy if args.policy != "all" else "parsec"
    machine = mirage(
        n_cores=args.cores, n_gpus=args.gpus,
        streams_per_gpu=args.streams if args.gpus else 1,
    )

    def _policy():
        if name == "native":
            return get_policy(name)
        return get_policy(name, gpu_flops_threshold=1e3)

    dag = build_dag(
        symbol, args.factotype,
        granularity=_policy().traits.granularity,
        recompute_ld=_policy().traits.recompute_ld,
    )
    clean = simulate(dag, machine, _policy())
    mk = clean.makespan

    t0 = time.perf_counter()
    rep = verify_health(clean.trace, name=f"health[{name}+off]")
    rep.stats["seconds"] = time.perf_counter() - t0
    reports.append(rep)

    def _faults():
        return FaultModel(
            [FaultSpec("limplock", time=0.1 * mk, resource=0,
                       factor=50.0)],
            seed=args.seed,
        )
    policy = HealthPolicy(
        min_samples=3, suspect_ratio=2.0, degraded_ratio=4.0,
        quarantine_ratio=3.0, quarantine_s=0.6 * mk,
        hedge=True, hedge_ratio=3.0,
    )
    r = simulate(dag, machine, _policy(), faults=_faults(),
                 health=policy)
    trace = r.trace

    t0 = time.perf_counter()
    rep = verify_health(trace, name=f"health[{name}+limplock]")
    rep.stats["seconds"] = time.perf_counter() - t0
    rep.stats["transitions"] = float(r.n_health_transitions)
    rep.stats["hedges"] = float(r.n_hedges)
    rep.stats["makespan_ms"] = r.makespan * 1e3
    rep.stats["clean_makespan_ms"] = mk * 1e3
    reports.append(rep)

    if args.inject in _HEALTH_INJECTS:
        corrupt = {"double-commit-hedge": double_commit_hedge,
                   "steal-from-quarantined": steal_from_quarantined,
                   "illegal-transition": illegal_transition}[args.inject]
        try:
            bad = corrupt(trace)
        except ValueError as exc:
            raise SystemExit(
                f"--inject {args.inject}: {exc} (policy {name}; a "
                "larger --size gives the monitor more samples)"
            ) from exc
        brep = verify_health(bad, name=f"health[{name}+{args.inject}]")
        reports.append(brep)


_CONCURRENCY_INJECTS = ("drop-sync-event", "unlocked-scatter",
                        "swallow-wakeup")

_DETERMINISM_INJECTS = ("reorder-ties", "reseed-midrun", "drop-seq")


def _determinism_pass(args: argparse.Namespace, symbol: Any,
                      reports: list[Report]) -> None:
    """D8xx: same-seed replay of the machine simulator and a burst.

    Runs the R6xx fault scenario's simulator configuration twice from
    the same seed (``FaultModel.fresh()`` rebuilds the RNG per run) and
    demands bit-identical canonical trace fingerprints, monotone and
    total tie-breaks, and matching RNG-draw provenance.  A second,
    cheap audit double-runs the stream-burst simulator the same way.
    """
    from repro.dag import build_dag
    from repro.machine import mirage, simulate
    from repro.machine.streamsim import simulate_kernel_burst
    from repro.resilience import FaultModel, FaultSpec, RecoveryPolicy
    from repro.runtime import get_policy
    from repro.runtime.tracing import ExecutionTrace
    from repro.verify.determinism import (
        drop_seq,
        reorder_ties,
        reseed_midrun,
        verify_determinism,
    )

    name = args.policy if args.policy != "all" else "parsec"
    machine = mirage(
        n_cores=args.cores, n_gpus=args.gpus,
        streams_per_gpu=args.streams if args.gpus else 1,
    )

    def _policy():
        if name == "native":
            return get_policy(name)
        return get_policy(name, gpu_flops_threshold=1e3)

    dag = build_dag(
        symbol, args.factotype,
        granularity=_policy().traits.granularity,
        recompute_ld=_policy().traits.recompute_ld,
    )
    specs = [
        FaultSpec("worker-crash", time=0.0, resource=0),
        FaultSpec("straggler", time=0.0, factor=3.0),
    ]
    base = FaultModel(specs, seed=args.seed, task_fail_rate=0.02)

    def run_sim() -> Any:
        r = simulate(dag, machine, _policy(),
                     faults=base.fresh(), recovery=RecoveryPolicy())
        return r.trace

    trace = run_sim()
    label = f"{name}+faults"
    if args.inject in _DETERMINISM_INJECTS:
        corrupt = {"reorder-ties": reorder_ties,
                   "reseed-midrun": reseed_midrun,
                   "drop-seq": drop_seq}[args.inject]
        try:
            trace = corrupt(trace)
        except ValueError as exc:
            raise SystemExit(f"--inject {args.inject}: {exc}") from exc
        label += f"+{args.inject}"
    t0 = time.perf_counter()
    rep = verify_determinism(run_sim, trace=trace,
                             name=f"determinism[{label}]")
    rep.stats["seconds"] = time.perf_counter() - t0
    reports.append(rep)

    def run_burst() -> Any:
        tr = ExecutionTrace()
        simulate_kernel_burst("cublas", 600, streams=max(args.streams, 2),
                              n_calls=64, trace=tr)
        return tr

    t0 = time.perf_counter()
    rep = verify_determinism(run_burst, name="determinism[burst]")
    rep.stats["seconds"] = time.perf_counter() - t0
    reports.append(rep)


def _concurrency_pass(args: argparse.Namespace, matrix: Any, res: Any,
                      reports: list[Report]) -> None:
    """C7xx + RV4xx: audit a live sync-instrumented threaded run.

    Unlike the other passes this one executes the *real* threaded
    runtime (``record_sync=True``) rather than the simulator, once per
    fan-in accumulation mode, and feeds the recorded ``SyncEvent``
    stream to the happens-before checker.  (The static shadow of the
    same discipline — the RV4xx lock-discipline lint — runs with the
    project linter in :func:`_lint_pass`.)
    """
    from repro.dag import build_dag
    from repro.runtime.threaded import factorize_threaded
    from repro.runtime.tracing import ExecutionTrace
    from repro.verify.concurrency import (
        drop_sync_event,
        swallow_wakeup,
        unlocked_scatter,
        verify_concurrency,
    )

    permuted = matrix.permute(res.perm.perm)
    dag = build_dag(res.symbol, args.factotype, granularity="2d")
    for accumulate in (False, True):
        trace = ExecutionTrace()
        factorize_threaded(
            res.symbol, permuted, args.factotype,
            n_workers=args.cores, trace=trace, record_sync=True,
            accumulate=accumulate,
        )
        label = "accumulate" if accumulate else "plain"
        if args.inject in _CONCURRENCY_INJECTS:
            try:
                if args.inject == "drop-sync-event":
                    trace = drop_sync_event(trace)
                elif args.inject == "unlocked-scatter":
                    trace = unlocked_scatter(trace)
                else:
                    trace = swallow_wakeup(trace, dag)
            except ValueError as exc:
                raise SystemExit(
                    f"--inject {args.inject}: {exc}"
                ) from exc
            label += f"+{args.inject}"
        t0 = time.perf_counter()
        rep = verify_concurrency(dag, trace)
        rep.name = f"concurrency[{label}]"
        rep.stats["seconds"] = time.perf_counter() - t0
        reports.append(rep)


def _adaptive_pass(args: argparse.Namespace, matrix: Any, res: Any,
                   reports: list[Report]) -> None:
    """A9xx: audit the adaptive scheduler's stamped duration model.

    Runs the *real* threaded runtime twice with the ``"adaptive"``
    scheduler sharing one :class:`~repro.runtime.adaptive.PerfHistory`:
    the first run is a cold start (static-levels fallback), the second
    re-ranks from the durations the first fed back.  Both stamped
    traces must satisfy the A9xx accounting rules.
    """
    from repro.dag import build_dag
    from repro.runtime.adaptive import AdaptiveScheduler
    from repro.runtime.threaded import factorize_threaded
    from repro.runtime.tracing import ExecutionTrace
    from repro.verify.adaptive import skew_model_stamp, verify_adaptive

    permuted = matrix.permute(res.perm.perm)
    dag = build_dag(res.symbol, args.factotype, granularity="2d")
    sched = AdaptiveScheduler()
    for label in ("cold", "warm"):
        trace = ExecutionTrace()
        factorize_threaded(
            res.symbol, permuted, args.factotype,
            n_workers=args.cores, trace=trace, scheduler=sched,
        )
        if args.inject == "skew-model":
            try:
                trace = skew_model_stamp(trace)
            except ValueError as exc:
                raise SystemExit(
                    f"--inject skew-model: {exc}"
                ) from exc
            label += "+skew-model"
        t0 = time.perf_counter()
        rep = verify_adaptive(dag, trace, name=f"adaptive[{label}]")
        rep.stats["seconds"] = time.perf_counter() - t0
        reports.append(rep)


def _symbolic_pass(args: argparse.Namespace, matrix: Any, res: Any,
                   reports: list[Report]) -> None:
    from repro.dag import build_dag
    from repro.kernels.indexcache import CoupleMapCache
    from repro.symbolic import SymbolicOptions, analyze
    from repro.verify.hazards import analyze_hazards
    from repro.verify.symbols import (
        skew_flops,
        stale_couple_map,
        stale_split,
        verify_couple_cache,
        verify_dag_costs,
        verify_symbolic,
    )

    # Exact audit: with amalgamation disabled the stored structure must
    # agree with the column-count recomputation entry for entry.
    t0 = time.perf_counter()
    exact_res = analyze(matrix, SymbolicOptions(
        split_max_width=args.split, amalgamation_ratio=None))
    rep = verify_symbolic(matrix, exact_res, exact=True,
                          name="symbolic[exact]")
    rep.stats["seconds"] = time.perf_counter() - t0
    reports.append(rep)

    # Amalgamated audit: the production structure may only *add* fill.
    t0 = time.perf_counter()
    rep = verify_symbolic(matrix, res, exact=False,
                          name="symbolic[amalgamated]")
    rep.stats["seconds"] = time.perf_counter() - t0
    reports.append(rep)

    # DAG cost audit on the production symbol.
    dag = build_dag(res.symbol, args.factotype, granularity="2d")
    label = "2d"
    if args.inject == "skew-flops":
        dag, task = skew_flops(dag)
        label += f"+skew-flops(task {task})"
    t0 = time.perf_counter()
    rep = verify_dag_costs(dag, name=f"dag-costs[{label}]")
    rep.stats["seconds"] = time.perf_counter() - t0
    reports.append(rep)

    # Split-DAG audit: the same couples, row-block split so the largest
    # couple yields several parts.  The parts must tile their couples
    # exactly under both the symbolic (N509) and hazard (H110)
    # re-derivations — a split whose maps went stale fails both.
    mmax = int(dag.gemm_m.max()) if dag.n_tasks else 0
    split_rows = max(1, mmax // 2)
    sdag = build_dag(res.symbol, args.factotype, granularity="2d",
                     split_rows=split_rows)
    slabel = f"2d-split({split_rows})"
    if args.inject == "stale-split":
        try:
            sdag, task = stale_split(sdag)
        except ValueError as exc:
            raise SystemExit(
                f"--inject stale-split: {exc} (a larger --size gives "
                "the builder couples tall enough to split)"
            ) from exc
        slabel += f"+stale-split(task {task})"
    t0 = time.perf_counter()
    rep = verify_dag_costs(sdag, name=f"dag-costs[{slabel}]")
    rep.stats["seconds"] = time.perf_counter() - t0
    reports.append(rep)
    t0 = time.perf_counter()
    hrep = analyze_hazards(sdag)
    hrep.name = f"hazards[{slabel}]"
    hrep.stats["seconds"] = time.perf_counter() - t0
    reports.append(hrep)

    # Couple-index-cache audit: the scatter maps the numeric hot path
    # reuses must agree with an independent re-derivation (N507/N508).
    cache = CoupleMapCache(res.symbol)
    clabel = "fresh"
    if args.inject == "stale-cache":
        cache, couple = stale_couple_map(cache)
        clabel = f"stale-cache({couple[0]} -> {couple[1]})"
    t0 = time.perf_counter()
    rep = verify_couple_cache(res.symbol, cache,
                              name=f"couple-cache[{clabel}]")
    rep.stats["seconds"] = time.perf_counter() - t0
    reports.append(rep)


def _lint_pass(args: argparse.Namespace,
               reports: list[Report]) -> None:
    import repro
    from repro.verify.lint import lint_report
    from repro.verify.lockdiscipline import lockdiscipline_report

    from repro.verify.eventloop import eventloop_report

    root = Path(args.lint_path) if args.lint_path else Path(repro.__file__).parent
    rep = lint_report([root])
    rep.name = f"lint[{root}]"
    reports.append(rep)

    # RV5xx event-loop-discipline lint over the simulator sources (the
    # static counterpart of the D8xx replay audit).
    t0 = time.perf_counter()
    erep = eventloop_report()
    erep.stats["seconds"] = time.perf_counter() - t0
    reports.append(erep)

    # RV4xx lock-discipline lint over the threaded-runtime scope (the
    # static counterpart of the C7xx trace audit).
    t0 = time.perf_counter()
    lrep = lockdiscipline_report()
    lrep.stats["seconds"] = time.perf_counter() - t0
    reports.append(lrep)


def run_verify(args: argparse.Namespace) -> int:
    """Entry point for the ``verify`` subcommand; returns the exit code."""
    from repro.symbolic import SymbolicOptions, analyze

    if args.inject in ("drop-recovery", "double-complete") \
            and args.no_resilience:
        raise SystemExit(
            f"--inject {args.inject} corrupts the resilience pass; "
            "drop --no-resilience to run it"
        )
    if args.inject in _HEALTH_INJECTS and args.no_health:
        raise SystemExit(
            f"--inject {args.inject} corrupts the health pass; "
            "drop --no-health to run it"
        )
    if args.inject in _CONCURRENCY_INJECTS and args.no_concurrency:
        raise SystemExit(
            f"--inject {args.inject} corrupts the concurrency pass; "
            "drop --no-concurrency to run it"
        )
    if args.inject in _DETERMINISM_INJECTS and args.no_determinism:
        raise SystemExit(
            f"--inject {args.inject} corrupts the determinism pass; "
            "drop --no-determinism to run it"
        )
    if args.inject == "skew-model" and args.no_adaptive:
        raise SystemExit(
            "--inject skew-model corrupts the adaptive pass; "
            "drop --no-adaptive to run it"
        )
    if args.inject in ("skew-flops", "stale-cache", "stale-split") \
            and args.no_symbolic:
        raise SystemExit(
            f"--inject {args.inject} corrupts the symbolic pass; "
            "drop --no-symbolic to run it"
        )
    reports: list[Report] = []
    needs_matrix = not (args.no_hazards and args.no_schedule
                        and args.no_symbolic and args.no_resilience
                        and args.no_health and args.no_concurrency
                        and args.no_determinism and args.no_adaptive)
    if needs_matrix:
        matrix = _load(args)
        res = analyze(matrix, SymbolicOptions(split_max_width=args.split))
        symbol = res.symbol
        if not args.no_hazards:
            _hazard_pass(args, symbol, reports)
        if not args.no_schedule:
            _schedule_pass(args, symbol, reports)
        if not args.no_resilience:
            _resilience_pass(args, symbol, reports)
        if not args.no_health:
            _health_pass(args, symbol, reports)
        if not args.no_concurrency:
            _concurrency_pass(args, matrix, res, reports)
        if not args.no_determinism:
            _determinism_pass(args, symbol, reports)
        if not args.no_adaptive:
            _adaptive_pass(args, matrix, res, reports)
        if not args.no_symbolic:
            _symbolic_pass(args, matrix, res, reports)
    if not args.no_lint:
        _lint_pass(args, reports)

    for rep in reports:
        print(rep.format(verbose=args.verbose))
        print()
    n_err = sum(rep.count() for rep in reports)
    n_pass = sum(rep.ok for rep in reports)
    print(f"verify: {n_pass}/{len(reports)} pass(es) clean, "
          f"{n_err} error finding(s)")
    return 0 if n_err == 0 else 1
