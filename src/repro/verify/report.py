"""Uniform findings container for the verification passes.

Every pass (:mod:`repro.verify.hazards`, :mod:`repro.verify.schedule`,
:mod:`repro.verify.lint`) returns a :class:`Report` holding zero or more
:class:`Finding` records, so the CLI and the tests can aggregate, count,
and render results the same way regardless of which pass produced them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Finding", "Report", "ERROR", "WARNING", "INFO"]

ERROR = "error"
WARNING = "warning"
INFO = "info"


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a verification pass.

    ``code`` is a stable machine-readable identifier (``H1xx`` hazards,
    ``S2xx`` schedule, ``RV3xx`` lint); ``tasks`` names the offending
    task pair (or tuple) when the finding concerns DAG tasks;
    ``location`` is ``file:line`` for lint findings.
    """

    code: str
    message: str
    severity: str = ERROR
    tasks: tuple[int, ...] = ()
    location: str = ""

    def render(self) -> str:
        where = f"{self.location}: " if self.location else ""
        return f"[{self.code}] {where}{self.message}"


@dataclass
class Report:
    """Outcome of one verification pass."""

    name: str
    findings: list[Finding] = field(default_factory=list)
    stats: dict[str, float] = field(default_factory=dict)

    def add(
        self,
        code: str,
        message: str,
        *,
        severity: str = ERROR,
        tasks: tuple[int, ...] = (),
        location: str = "",
    ) -> None:
        self.findings.append(Finding(code, message, severity, tasks, location))

    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def ok(self) -> bool:
        """True when no *error*-severity finding was recorded."""
        return not self.errors()

    def count(self, severity: str = ERROR) -> int:
        return sum(1 for f in self.findings if f.severity == severity)

    # ------------------------------------------------------------------
    def format(self, *, max_findings: int = 25, verbose: bool = False) -> str:
        """Human-readable summary; errors first, then warnings/infos."""
        lines = [f"== {self.name} =="]
        for key, val in sorted(self.stats.items()):
            if isinstance(val, float) and not val.is_integer():
                lines.append(f"   {key:<24}: {val:.4g}")
            else:
                lines.append(f"   {key:<24}: {int(val)}")
        ranked = sorted(
            self.findings,
            key=lambda f: {ERROR: 0, WARNING: 1, INFO: 2}.get(f.severity, 3),
        )
        if not verbose:
            ranked = [f for f in ranked if f.severity != INFO]
        shown = ranked[:max_findings]
        for f in shown:
            lines.append(f"   {f.severity.upper():<7} {f.render()}")
        hidden = len(ranked) - len(shown)
        if hidden > 0:
            lines.append(f"   ... and {hidden} more finding(s)")
        verdict = "OK" if self.ok else f"FAILED ({self.count()} error(s))"
        lines.append(f"   -> {verdict}")
        return "\n".join(lines)
