"""Independent derivation of per-task read/write sets.

The hazard analyzer must not trust the edges the DAG builder emitted, so
this module re-derives what every task *touches* straight from the
symbolic structure (:func:`repro.dag.builder.update_couples` enumerates
the update couples from the block pattern alone, never from
``succ_list``).  The memory objects are whole panels (cblks) — exactly
the granularity at which the builder synchronizes.

Access modes
------------
``READ``   — the task consumes the final, factorized value of a panel
             (an update reading its source panel);
``WRITE``  — the task produces the final value of a panel (the panel
             factorization, or the fused task containing it);
``ACCUM``  — the task scatter-adds a contribution into a panel (an
             update landing in its facing panel).  Accumulations commute
             with one another but conflict with reads and writes.

Per :class:`~repro.dag.tasks.TaskKind`:

* ``PANEL``   — WRITE its cblk (it also reads the accumulated state,
  which the WRITE mode subsumes for conflict purposes);
* ``UPDATE``  — READ its source panel, ACCUM into its facing panel;
* ``PANEL1D`` — the fusion of a panel with its outgoing (``"1d"``) or
  incoming (``"1d-left"``) updates: WRITE its cblk plus the union of the
  fused updates' accesses;
* ``SUBTREE`` — WRITE every member cblk of the fused subtree; internal
  updates stay inside the task.

Subtree membership is *re-derived* here rather than read from builder
metadata: the couples absent from the DAG's ``UPDATE`` tasks must be the
ones fused away, and union-find over those internal couples reconstructs
the groups.  Inconsistencies (a panel owned by no task or two tasks, a
couple with no update task in a plain 2D DAG) are reported as findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dag.builder import update_couples
from repro.dag.tasks import TaskDAG, TaskKind
from repro.verify.report import Report

__all__ = ["READ", "WRITE", "ACCUM", "AccessSets", "derive_accesses"]

READ = "read"
WRITE = "write"
ACCUM = "accum"


@dataclass
class AccessSets:
    """Derived panel-level access sets of a factorization DAG.

    All arrays are indexed per *couple* (one symbolic update couple that
    crosses task boundaries); panel ownership is per cblk.
    """

    #: task that WRITEs panel p (produces its final value), length K.
    writer: np.ndarray
    #: per cross-task couple: the reading/accumulating task.
    couple_task: np.ndarray
    #: per cross-task couple: the panel it READs (source cblk).
    read_panel: np.ndarray
    #: per cross-task couple: the panel it ACCUMs into (facing cblk),
    #: or -1 when the update executes inside the target's own task
    #: (left-looking 1D fusion: the "accum" is a plain local write).
    accum_panel: np.ndarray
    #: problems found while deriving (ownership conflicts &c).
    problems: list = field(default_factory=list)

    @property
    def n_panels(self) -> int:
        return int(self.writer.size)


def _couple_keys(src: np.ndarray, tgt: np.ndarray, K: int) -> np.ndarray:
    return src.astype(np.int64) * np.int64(K) + tgt.astype(np.int64)


class _UnionFind:
    def __init__(self, n: int) -> None:
        self.parent = np.arange(n, dtype=np.int64)

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = int(self.parent[root])
        while self.parent[x] != root:  # path compression
            self.parent[x], x = root, int(self.parent[x])
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[ra] = rb


def derive_accesses(dag: TaskDAG, report: Report | None = None) -> AccessSets:
    """Derive :class:`AccessSets` for a factorization-phase ``dag``.

    ``report`` (optional) collects structural findings — ownership
    conflicts, couples with no matching update task — under ``H105`` /
    ``H106`` codes.  The returned access sets are still usable for the
    panels that *are* consistently owned.
    """
    if getattr(dag, "phase", "facto") != "facto":
        raise NotImplementedError(
            "hazard access derivation supports factorization DAGs only "
            "(solve-phase DAGs carry vector accesses, not panel accesses)"
        )
    if dag.symbol is None:
        raise ValueError("dag.symbol is required to derive access sets")

    sym = dag.symbol
    K = sym.n_cblk
    src, tgt, _, _ = update_couples(sym)
    kind = dag.kind
    problems: list = []

    def note(code: str, message: str, tasks: tuple[int, ...] = ()) -> None:
        problems.append((code, message, tasks))
        if report is not None:
            report.add(code, message, tasks=tasks)

    writer = np.full(K, -1, dtype=np.int64)

    if dag.granularity in ("1d", "1d-left"):
        # One PANEL1D task per cblk, task index == cblk by construction;
        # verify rather than assume.
        if dag.n_tasks != K or not np.all(kind == TaskKind.PANEL1D):
            note("H105", "1D DAG does not have exactly one PANEL1D task per cblk")
        order = np.argsort(dag.cblk, kind="stable")
        if not np.array_equal(dag.cblk[order], np.arange(K)):
            note("H105", "1D DAG panels are not a permutation of the cblks")
            return AccessSets(writer, np.empty(0, np.int64),
                              np.empty(0, np.int64), np.empty(0, np.int64),
                              problems)
        writer[dag.cblk] = np.arange(dag.n_tasks, dtype=np.int64)
        if dag.granularity == "1d":
            # Right-looking: task(src) scatter-adds into panel tgt.
            couple_task = writer[src]
            read_panel = src
            accum_panel = tgt.copy()
        else:
            # Left-looking: task(tgt) reads panel src; no cross-task accum.
            couple_task = writer[tgt]
            read_panel = src
            accum_panel = np.full(src.size, -1, dtype=np.int64)
        return AccessSets(writer, couple_task, read_panel, accum_panel, problems)

    # ------------------------------------------------------------------
    # 2D (possibly with fused SUBTREE tasks).
    # ------------------------------------------------------------------
    is_update = kind == TaskKind.UPDATE
    upd_ids = np.flatnonzero(is_update)
    unit_ids = np.flatnonzero(~is_update)

    # Match DAG update tasks against the symbolically derived couples.
    keys_all = _couple_keys(src, tgt, K)
    order = np.argsort(keys_all, kind="stable")
    keys_sorted = keys_all[order]
    upd_keys = _couple_keys(dag.cblk[upd_ids], dag.target[upd_ids], K)
    pos = np.searchsorted(keys_sorted, upd_keys)
    if keys_sorted.size:
        pos_ok = (pos < keys_sorted.size) & (
            keys_sorted[np.minimum(pos, keys_sorted.size - 1)] == upd_keys
        )
    else:
        pos_ok = np.zeros(upd_keys.size, dtype=bool)
    for t in upd_ids[~pos_ok]:
        note(
            "H106",
            f"update task {int(t)} ({int(dag.cblk[t])}->{int(dag.target[t])}) "
            "matches no couple of the symbolic structure",
            (int(t),),
        )
    covered = np.zeros(src.size, dtype=bool)
    covered[order[pos[pos_ok]]] = True

    # Direct panel ownership from unit tasks.
    subtree_units = unit_ids[kind[unit_ids] == TaskKind.SUBTREE]
    for t in unit_ids:
        k = int(dag.cblk[t])
        if writer[k] != -1:
            note(
                "H105",
                f"panel {k} owned by two tasks ({int(writer[k])} and {int(t)})",
                (int(writer[k]), int(t)),
            )
        writer[k] = t

    internal = np.flatnonzero(~covered)
    if internal.size and subtree_units.size == 0:
        for i in internal[:50]:
            note(
                "H106",
                f"couple {int(src[i])}->{int(tgt[i])} has no UPDATE task "
                "(and the DAG has no SUBTREE tasks to absorb it)",
                (),
            )
    elif internal.size:
        # Reconstruct fused groups from the internal couples.
        uf = _UnionFind(K)
        for i in internal:
            uf.union(int(src[i]), int(tgt[i]))
        root_owner: dict[int, int] = {}
        for t in subtree_units:
            root_owner[uf.find(int(dag.cblk[t]))] = int(t)
        for k in range(K):
            if writer[k] != -1:
                continue
            owner = root_owner.get(uf.find(k))
            if owner is None:
                note("H105", f"panel {k} is owned by no task", ())
            else:
                writer[k] = owner
        # An internal couple must really be internal to one fused task.
        for i in internal:
            s, t = int(src[i]), int(tgt[i])
            if writer[s] != writer[t] or writer[s] < 0:
                note(
                    "H106",
                    f"couple {s}->{t} has no UPDATE task yet spans two "
                    f"tasks ({int(writer[s])} and {int(writer[t])})",
                    (int(writer[s]), int(writer[t])),
                )

    unowned = np.flatnonzero(writer < 0)
    for k in unowned[:50]:
        if not any(p[0] == "H105" and f"panel {int(k)} " in p[1] for p in problems):
            note("H105", f"panel {int(k)} is owned by no task", ())

    # Cross-task couples: the surviving update tasks.
    couple_task = upd_ids[pos_ok]
    read_panel = dag.cblk[couple_task].astype(np.int64)
    accum_panel = dag.target[couple_task].astype(np.int64)
    return AccessSets(writer, couple_task, read_panel, accum_panel, problems)
