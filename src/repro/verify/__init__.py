"""Static-analysis subsystem: hazard coverage, schedule verification, lint.

Three passes, each returning a :class:`repro.verify.report.Report` and
exposed through ``python -m repro verify``:

* :func:`repro.verify.hazards.analyze_hazards` — re-derives every task's
  panel read/write sets from the symbolic structure and checks that each
  RAW/ACCUM hazard pair is covered by a dependency path in the DAG
  (reachability via topological + interval labeling, not pairwise BFS);
* :func:`repro.verify.schedule.verify_schedule` — checks an
  :class:`~repro.runtime.tracing.ExecutionTrace` for happens-before,
  resource exclusivity, GPU placement, and mutex-window violations;
* :func:`repro.verify.lint.lint_paths` — an AST linter enforcing the
  project's simulation invariants (no frozen-dataclass mutation, no
  float-equality on times, ``traits`` on every policy, no ambiguous
  NumPy truthiness).

The hazard analyzer and the linter run inside the test suite, so a
builder change that drops an edge — or a scheduler change that breaks an
invariant — fails tier-1 rather than silently corrupting a panel.
"""

from repro.verify.access import ACCUM, READ, WRITE, AccessSets, derive_accesses
from repro.verify.hazards import (
    analyze_hazards,
    drop_edge,
    find_cycle,
    find_redundant_edges,
)
from repro.verify.lint import LintFinding, lint_paths, lint_report, lint_sources
from repro.verify.reach import ReachabilityOracle
from repro.verify.report import ERROR, INFO, WARNING, Finding, Report
from repro.verify.schedule import (
    ScheduleError,
    assert_valid_schedule,
    verify_schedule,
)

__all__ = [
    "AccessSets",
    "derive_accesses",
    "READ",
    "WRITE",
    "ACCUM",
    "analyze_hazards",
    "drop_edge",
    "find_cycle",
    "find_redundant_edges",
    "ReachabilityOracle",
    "verify_schedule",
    "assert_valid_schedule",
    "ScheduleError",
    "lint_paths",
    "lint_sources",
    "lint_report",
    "LintFinding",
    "Finding",
    "Report",
    "ERROR",
    "WARNING",
    "INFO",
]
