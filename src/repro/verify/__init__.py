"""Static-analysis subsystem: hazard coverage, schedule verification, lint.

Each pass returns a :class:`repro.verify.report.Report` and is exposed
through ``python -m repro verify``:

* :func:`repro.verify.hazards.analyze_hazards` — re-derives every task's
  panel read/write sets from the symbolic structure and checks that each
  RAW/ACCUM hazard pair is covered by a dependency path in the DAG
  (reachability via topological + interval labeling, not pairwise BFS);
* :func:`repro.verify.schedule.verify_schedule` — checks an
  :class:`~repro.runtime.tracing.ExecutionTrace` for happens-before,
  resource exclusivity, GPU placement, and mutex-window violations;
* :func:`repro.verify.memory.verify_memory` — replays the simulator's
  :class:`~repro.runtime.tracing.DataEvent` stream against the task
  events and checks residency-before-use, device-memory capacity,
  redundant transfers, and a static lower bound on h2d traffic (M4xx);
* :func:`repro.verify.symbols.verify_symbolic` /
  :func:`repro.verify.symbols.verify_dag_costs` — re-derive nnz(L),
  per-supernode column counts, and per-task flop counts from the
  elimination tree without trusting the stored ``SymbolMatrix`` or
  ``TaskDAG`` annotations (N5xx);
* :func:`repro.verify.resilience.verify_resilience` — audits the
  fault/recovery event stream recorded by the resilience layer: every
  fault paired with a recovery, no double completions without an
  interleaved fault, backoff delays actually paid, no activity on a
  lost device (R6xx);
* :func:`repro.verify.health.verify_health` — audits the health and
  hedge event streams recorded by the graceful-degradation layer:
  exactly-once commit of hedged tasks, legal health-state transition
  chains, no dispatch onto quarantined workers, launch/win/cancel
  hedge accounting, and a monitoring-off identity check (R7xx);
* :func:`repro.verify.concurrency.verify_concurrency` — a vector-clock
  happens-before checker over the ``SyncEvent`` stream the threaded
  runtime records (``record_sync=True``): unordered conflicting
  writes, reads of unpublished completions, scatters outside the
  update lock, accumulator flush/drain races, lost wakeups, lock-order
  cycles, and sync-stats provenance (C7xx);
* :func:`repro.verify.lockdiscipline.lockdiscipline_paths` — the static
  shadow of the same discipline: an AST lint over ``repro.runtime`` and
  ``repro.kernels.accumulate`` for unlocked shared writes, condition
  waits without a predicate loop, inconsistent lock acquisition order,
  sleep-as-synchronization, and unguarded reads of lock-guarded state
  in return position (RV4xx);
* :func:`repro.verify.determinism.verify_determinism` — replays a
  seeded run and convicts divergence: same-seed fingerprint mismatch,
  event-time monotonicity and tie-break totality, RNG-draw provenance,
  first-divergence localization, and meta/seed stamping completeness
  (D8xx) over the canonical order-sensitive trace fingerprint
  (:meth:`~repro.runtime.tracing.ExecutionTrace.fingerprint`);
* :func:`repro.verify.adaptive.verify_adaptive` — audits the adaptive
  scheduler's stamped duration-model provenance
  (``trace.meta["adaptive"]``: model version + deterministic sample
  counts) against the trace's own task events and the shared
  :func:`repro.resilience.health.bucket_key` bucketing (A9xx);
* :func:`repro.verify.eventloop.eventloop_paths` — the static shadow
  of the same discipline: an AST lint over the three discrete-event
  simulators and the fault layer for heap pushes without a monotonic
  tie-breaker, float equality on simulated clocks, unordered-set
  choices feeding the event order, and wall clocks or unseeded RNGs
  inside a simulation step (RV5xx);
* :func:`repro.verify.lint.lint_paths` — an AST linter enforcing the
  project's simulation invariants (no frozen-dataclass mutation, no
  float-equality on times, ``traits`` on every policy, no ambiguous
  NumPy truthiness, no shared mutable dataclass defaults, no iteration
  over unordered sets in scheduling code, no unseeded randomness in
  simulation sources).

The hazard analyzer and the linter run inside the test suite, so a
builder change that drops an edge — or a scheduler change that breaks an
invariant — fails tier-1 rather than silently corrupting a panel.
"""

from repro.verify.access import ACCUM, READ, WRITE, AccessSets, derive_accesses
from repro.verify.adaptive import skew_model_stamp, verify_adaptive
from repro.verify.concurrency import (
    drop_sync_event,
    swallow_wakeup,
    unlocked_scatter,
    verify_concurrency,
)
from repro.verify.determinism import (
    drop_seq,
    reorder_ties,
    reseed_midrun,
    trace_diff,
    verify_determinism,
)
from repro.verify.eventloop import (
    eventloop_paths,
    eventloop_report,
    eventloop_sources,
)
from repro.verify.health import (
    double_commit_hedge,
    illegal_transition,
    steal_from_quarantined,
    verify_health,
)
from repro.verify.hazards import (
    analyze_hazards,
    drop_edge,
    find_cycle,
    find_redundant_edges,
)
from repro.verify.lint import LintFinding, lint_paths, lint_report, lint_sources
from repro.verify.lockdiscipline import (
    lockdiscipline_paths,
    lockdiscipline_report,
    lockdiscipline_sources,
)
from repro.verify.memory import drop_transfer, overflow_residency, verify_memory
from repro.verify.reach import ReachabilityOracle
from repro.verify.report import ERROR, INFO, WARNING, Finding, Report
from repro.verify.resilience import (
    double_complete,
    drop_recovery,
    verify_resilience,
)
from repro.verify.schedule import (
    ScheduleError,
    assert_valid_schedule,
    verify_schedule,
)
from repro.verify.symbols import (
    derive_couples_by_target,
    skew_flops,
    stale_couple_map,
    verify_couple_cache,
    verify_dag_costs,
    verify_symbolic,
)

__all__ = [
    "AccessSets",
    "derive_accesses",
    "READ",
    "WRITE",
    "ACCUM",
    "analyze_hazards",
    "drop_edge",
    "find_cycle",
    "find_redundant_edges",
    "ReachabilityOracle",
    "verify_schedule",
    "assert_valid_schedule",
    "ScheduleError",
    "verify_memory",
    "drop_transfer",
    "overflow_residency",
    "verify_resilience",
    "drop_recovery",
    "double_complete",
    "verify_health",
    "double_commit_hedge",
    "steal_from_quarantined",
    "illegal_transition",
    "verify_symbolic",
    "verify_dag_costs",
    "verify_couple_cache",
    "derive_couples_by_target",
    "skew_flops",
    "stale_couple_map",
    "verify_concurrency",
    "drop_sync_event",
    "unlocked_scatter",
    "swallow_wakeup",
    "verify_adaptive",
    "skew_model_stamp",
    "verify_determinism",
    "trace_diff",
    "reorder_ties",
    "reseed_midrun",
    "drop_seq",
    "eventloop_paths",
    "eventloop_sources",
    "eventloop_report",
    "lockdiscipline_paths",
    "lockdiscipline_sources",
    "lockdiscipline_report",
    "lint_paths",
    "lint_sources",
    "lint_report",
    "LintFinding",
    "Finding",
    "Report",
    "ERROR",
    "WARNING",
    "INFO",
]
