"""DAG hazard analyzer: is every data hazard covered by an edge path?

The builder promises that the emitted dependency edges serialize every
conflicting pair of panel accesses — that promise is the entire safety
argument of running the factorization through a generic runtime (a
missing edge is a silent data race on a facing panel).  This pass checks
the promise *independently*: read/write sets come from the symbolic
structure (:mod:`repro.verify.access`), coverage queries run against the
DAG's actual ``succ_ptr``/``succ_list`` via
:class:`repro.verify.reach.ReachabilityOracle`.

Checked hazards (panels are the memory objects):

* **RAW**  — a task READing panel ``p`` must be preceded by a path from
  ``p``'s WRITEr (``H101`` when the path is missing);
* **ACCUM→WRITE** — every task ACCUMulating into ``p`` must have a path
  *to* ``p``'s WRITEr: the panel factorization consumes the accumulated
  sum (``H102``);
* **direction** — if the only path between a hazard pair runs opposite
  to the semantic order, that is reported separately (``H103``) because
  it usually means the builder swapped edge endpoints;
* **cycles** — a cyclic DAG deadlocks every engine (``H104``);
* **ownership** — every panel written by exactly one task (``H105`` /
  ``H106``, emitted by the access derivation);
* **ACCUM/ACCUM exclusivity** — two accumulations into one panel need
  mutual exclusion, not ordering; in 2D facto DAGs they must share a
  ``mutex`` group (``H107``).  1D DAGs rely on engine-level panel locks
  (the threaded engine's per-panel mutex), reported as info (``H109``).
* **redundant edges** — optionally (``find_redundant``), transitive
  edges whose removal leaves the pair still path-connected (``H108``,
  info): harmless for correctness but extra runtime bookkeeping.
* **2D split structure** — when the DAG declares tall-panel row-block
  splitting (``split_rows``), every couple's parts must tile ``[0, m)``
  of the *re-derived* couple height exactly (contiguous, gap- and
  overlap-free, ``gemm_m == hi - lo``); without a declared split, a
  couple appearing as more than one update task is itself the hazard
  (``H110``): two tasks would scatter the same contribution twice.
"""

from __future__ import annotations

import numpy as np

from repro.dag.builder import update_couples
from repro.dag.tasks import TaskDAG, TaskKind
from repro.verify.access import derive_accesses
from repro.verify.reach import ReachabilityOracle
from repro.verify.report import INFO, Report

__all__ = ["analyze_hazards", "find_cycle", "find_redundant_edges", "drop_edge"]


def find_cycle(dag: TaskDAG) -> list[int]:
    """Return one dependency cycle as a task list, or ``[]`` if acyclic."""
    n = dag.n_tasks
    indeg = dag.n_deps.copy()
    stack = list(np.flatnonzero(indeg == 0))
    done = 0
    while stack:
        t = stack.pop()
        done += 1
        for s in dag.successors(t):
            indeg[s] -= 1
            if indeg[s] == 0:
                stack.append(int(s))
    if done == n:
        return []
    # Walk successors inside the leftover (cyclic) region until a repeat.
    leftover = np.flatnonzero(indeg > 0)
    start = int(leftover[0])
    seen: dict[int, int] = {}
    path: list[int] = []
    v = start
    while v not in seen:
        seen[v] = len(path)
        path.append(v)
        nxt = None
        for s in dag.successors(v):
            if indeg[s] > 0:
                nxt = int(s)
                break
        assert nxt is not None, "cyclic region must keep a cyclic successor"
        v = nxt
    return path[seen[v]:]


def drop_edge(dag: TaskDAG, edge_index: int) -> TaskDAG:
    """Copy of ``dag`` with one CSR edge removed (fault injection).

    ``edge_index`` addresses ``succ_list`` directly.  Used by the CLI's
    ``--inject drop-edge`` self-test and the mutation fuzz tests.
    """
    if not 0 <= edge_index < dag.n_edges:
        raise IndexError(f"edge index {edge_index} out of range")
    head = int(np.searchsorted(dag.succ_ptr, edge_index, side="right") - 1)
    succ_ptr = dag.succ_ptr.copy()
    succ_ptr[head + 1:] -= 1
    succ_list = np.delete(dag.succ_list, edge_index)
    out = TaskDAG(
        kind=dag.kind, cblk=dag.cblk, target=dag.target, flops=dag.flops,
        gemm_m=dag.gemm_m, gemm_n=dag.gemm_n, gemm_k=dag.gemm_k,
        succ_ptr=succ_ptr, succ_list=succ_list, mutex=dag.mutex,
        granularity=dag.granularity, symbol=dag.symbol,
        factotype=dag.factotype, fused_components=dag.fused_components,
        row_lo=dag.row_lo, row_hi=dag.row_hi, split_rows=dag.split_rows,
    )
    out.phase = dag.phase
    return out


def _check_split_structure(
    dag: TaskDAG, report: Report, max_reported: int
) -> None:
    """H110: per-couple 2D row-block structure, re-derived independently.

    The couple heights come from :func:`update_couples` (the symbolic
    structure), never from the DAG's own ``gemm_m`` — a builder that
    mis-split a couple cannot vouch for itself.
    """
    if dag.symbol is None or dag.granularity != "2d":
        return
    upd = np.flatnonzero(dag.kind == TaskKind.UPDATE)
    if not upd.size:
        return
    K = int(dag.symbol.n_cblk)
    keys = dag.cblk[upd].astype(np.int64) * K + dag.target[upd]
    n_bad = 0
    if dag.split_rows is None:
        uniq, counts = np.unique(keys, return_counts=True)
        for key, cnt in zip(uniq[counts > 1], counts[counts > 1]):
            s, t = divmod(int(key), K)
            if n_bad < max_reported:
                report.add(
                    "H110",
                    f"couple {s}->{t} appears as {int(cnt)} update tasks "
                    "but the DAG declares no 2D split: the contribution "
                    "would scatter more than once",
                )
            n_bad += 1
        report.stats["split_bad_couples"] = n_bad
        return

    src, tgt, ms, _ns = update_couples(dag.symbol)
    m_of = {
        (int(src[i]), int(tgt[i])): int(ms[i]) for i in range(src.size)
    }
    row_lo = dag.row_lo
    row_hi = dag.row_hi
    if row_lo is None or row_hi is None:
        report.add(
            "H110",
            "DAG declares split_rows but carries no row_lo/row_hi bounds",
        )
        return
    order = np.argsort(keys, kind="stable")
    keys_sorted = keys[order]
    bounds = np.flatnonzero(np.diff(keys_sorted)) + 1
    starts = np.concatenate(([0], bounds))
    ends = np.concatenate((bounds, [keys_sorted.size]))
    for s_idx, e_idx in zip(starts, ends):
        group = upd[order[s_idx:e_idx]]
        s, t = divmod(int(keys_sorted[s_idx]), K)
        m = m_of.get((s, t))
        if m is None:
            continue  # H106 already flags couples unknown to the symbol
        los = row_lo[group]
        his = row_hi[group]
        part_order = np.argsort(los, kind="stable")
        los, his = los[part_order], his[part_order]
        tasks = group[part_order]
        ok = (
            int(los[0]) == 0
            and int(his[-1]) == m
            and np.all(his[:-1] == los[1:])
            and np.all(his > los)
            and np.all(dag.gemm_m[tasks] == his - los)
        )
        if not ok:
            parts = [(int(a), int(b)) for a, b in zip(los[:6], his[:6])]
            if n_bad < max_reported:
                report.add(
                    "H110",
                    f"couple {s}->{t}: row-block parts {parts} do not "
                    f"tile [0, {m}) with consistent gemm_m — stale or "
                    "corrupted 2D split",
                    tasks=tuple(int(x) for x in tasks[:6]),
                )
            n_bad += 1
    report.stats["split_bad_couples"] = n_bad


def find_redundant_edges(dag: TaskDAG, *, limit: int = 200) -> list[tuple[int, int]]:
    """Transitive edges: (u, v) such that u ⇝ v without the direct edge.

    An edge is redundant when some *other* successor of ``u`` already
    reaches ``v``.  Returns at most ``limit`` pairs.
    """
    order = dag.topological_order()
    oracle = ReachabilityOracle(dag, order)
    out: list[tuple[int, int]] = []
    for u in range(dag.n_tasks):
        succ = dag.successors(u)
        if succ.size < 2:
            continue
        for v in succ:
            v = int(v)
            others = succ[succ != v]
            if others.size and oracle.reachable_many(
                others, np.full(others.size, v, dtype=np.int64)
            ).any():
                out.append((u, v))
                if len(out) >= limit:
                    return out
    return out


def analyze_hazards(
    dag: TaskDAG,
    *,
    find_redundant: bool = False,
    max_reported: int = 100,
) -> Report:
    """Run the hazard-coverage analysis; returns a :class:`Report`.

    The pass is linear-ish in tasks + edges: hazard pairs are enumerated
    per symbolic couple (one RAW and at most one ACCUM pair each), the
    coverage test is batched through the reachability oracle, and the
    ACCUM/ACCUM exclusivity check compares mutex groups without ever
    enumerating the quadratic pair set.
    """
    report = Report(f"hazards[{dag.granularity}]")
    report.stats["tasks"] = dag.n_tasks
    report.stats["edges"] = dag.n_edges

    cycle = find_cycle(dag)
    if cycle:
        pretty = " -> ".join(str(t) for t in cycle[:12])
        report.add(
            "H104",
            f"dependency cycle of length {len(cycle)}: {pretty}"
            + (" -> ..." if len(cycle) > 12 else ""),
            tasks=tuple(cycle[:12]),
        )
        return report  # ranks are meaningless on a cyclic graph

    acc = derive_accesses(dag, report)
    order = dag.topological_order()
    oracle = ReachabilityOracle(dag, order)

    # ------------------------------------------------------------------
    # Pair enumeration (vectorized).  For each cross-task couple:
    #   RAW : writer(read_panel)  ⇝  couple_task
    #   ACC : couple_task         ⇝  writer(accum_panel)
    # ------------------------------------------------------------------
    writer = acc.writer
    valid = np.ones(acc.couple_task.size, dtype=bool)
    valid &= acc.read_panel >= 0
    srcs: list[np.ndarray] = []
    dsts: list[np.ndarray] = []
    kinds: list[np.ndarray] = []

    raw_ok = valid & (writer[np.maximum(acc.read_panel, 0)] >= 0)
    raw_u = writer[acc.read_panel[raw_ok]]
    raw_v = acc.couple_task[raw_ok]
    keep = raw_u != raw_v
    srcs.append(raw_u[keep])
    dsts.append(raw_v[keep])
    kinds.append(np.zeros(int(keep.sum()), dtype=np.int8))

    has_accum = acc.accum_panel >= 0
    acc_ok = has_accum & (writer[np.maximum(acc.accum_panel, 0)] >= 0)
    acc_u = acc.couple_task[acc_ok]
    acc_v = writer[acc.accum_panel[acc_ok]]
    keep = acc_u != acc_v
    srcs.append(acc_u[keep])
    dsts.append(acc_v[keep])
    kinds.append(np.ones(int(keep.sum()), dtype=np.int8))

    us = np.concatenate(srcs) if srcs else np.empty(0, np.int64)
    vs = np.concatenate(dsts) if dsts else np.empty(0, np.int64)
    pk = np.concatenate(kinds) if kinds else np.empty(0, np.int8)
    report.stats["hazard_pairs"] = int(us.size)

    covered = oracle.reachable_many(us, vs)
    missing = np.flatnonzero(~covered)
    if missing.size:
        # Distinguish "no path at all" from "path in the wrong direction".
        rev = oracle.reachable_many(vs[missing], us[missing])
        n_shown = 0
        for j, idx in enumerate(missing):
            u, v = int(us[idx]), int(vs[idx])
            hz = "RAW (panel read before its factorization is ordered)" \
                if pk[idx] == 0 else \
                "ACCUM (scatter-add not ordered before the panel write)"
            if n_shown < max_reported:
                if rev[j]:
                    report.add(
                        "H103",
                        f"hazard path between tasks {u} and {v} exists only "
                        f"in the wrong direction ({v} -> {u}); {hz}",
                        tasks=(u, v),
                    )
                else:
                    report.add(
                        "H101" if pk[idx] == 0 else "H102",
                        f"missing dependency path {u} -> {v}: {hz}; "
                        f"task {u} and task {v} may race on a panel",
                        tasks=(u, v),
                    )
            n_shown += 1
        if n_shown > max_reported:
            report.add(
                "H101",
                f"... {n_shown - max_reported} further uncovered hazard "
                "pair(s) suppressed",
            )
    report.stats["uncovered_pairs"] = int(missing.size)

    # ------------------------------------------------------------------
    # ACCUM/ACCUM exclusivity per panel.
    # ------------------------------------------------------------------
    if has_accum.any():
        acc_tasks = acc.couple_task[has_accum]
        acc_panels = acc.accum_panel[has_accum]
        n_groups_checked = 0
        order_p = np.argsort(acc_panels, kind="stable")
        panels_sorted = acc_panels[order_p]
        tasks_sorted = acc_tasks[order_p]
        bounds = np.flatnonzero(np.diff(panels_sorted)) + 1
        starts = np.concatenate(([0], bounds))
        ends = np.concatenate((bounds, [panels_sorted.size]))
        is_2d_update = dag.kind[tasks_sorted] == TaskKind.UPDATE
        for s, e in zip(starts, ends):
            if e - s < 2:
                continue
            n_groups_checked += 1
            group_tasks = tasks_sorted[s:e]
            panel = int(panels_sorted[s])
            if np.all(is_2d_update[s:e]):
                groups = dag.mutex[group_tasks]
                bad = np.flatnonzero(groups != groups[0]) if np.unique(groups).size > 1 else []
                if len(bad) or int(groups[0]) < 0:
                    a = int(group_tasks[0])
                    b = int(group_tasks[bad[0]]) if len(bad) else a
                    report.add(
                        "H107",
                        f"updates into panel {panel} are not mutually "
                        f"exclusive: tasks {a} and {b} carry mutex groups "
                        f"{int(dag.mutex[a])} and {int(dag.mutex[b])}",
                        tasks=(a, b),
                    )
            else:
                # Fused 1D tasks: exclusion is delegated to engine-level
                # per-panel locks; surface it so nobody assumes ordering.
                report.add(
                    "H109",
                    f"{e - s} fused tasks accumulate into panel {panel}; "
                    "exclusion relies on engine-level panel locking",
                    severity=INFO,
                    tasks=tuple(int(t) for t in group_tasks[:4]),
                )
        report.stats["accum_groups"] = n_groups_checked

    # ------------------------------------------------------------------
    # 2D row-block split structure (or absence thereof).
    # ------------------------------------------------------------------
    _check_split_structure(dag, report, max_reported)

    # ------------------------------------------------------------------
    if find_redundant:
        redundant = find_redundant_edges(dag)
        report.stats["redundant_edges"] = len(redundant)
        for u, v in redundant[:max_reported]:
            report.add(
                "H108",
                f"edge {u} -> {v} is transitive (another path covers it)",
                severity=INFO,
                tasks=(u, v),
            )
    report.stats["dfs_fallbacks"] = oracle.stats["dfs_fallbacks"]
    return report
