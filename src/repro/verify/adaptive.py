"""A9xx: audit the adaptive scheduler's stamped duration model.

The threaded runtime stamps ``trace.meta["adaptive"]`` — model version
plus deterministic sample counts (:meth:`repro.runtime.adaptive.\
AdaptiveScheduler.model_stamp`) — whenever the ``"adaptive"`` scheduler
produced the trace.  The stamp sits inside the D8xx fingerprint
whitelist, so a forged or drifted stamp would silently change a trace's
identity; this pass re-derives everything checkable from the trace's
own task events and convicts any disagreement:

* **A901 stamp/scheduler mismatch** — ``meta["scheduler"] ==
  "adaptive"`` without a stamp, or a stamp on a trace another scheduler
  produced (forged provenance);
* **A902 malformed stamp** — missing fields, unsupported
  ``model_version``, negative counts, or per-bucket counts that do not
  sum to ``observed``;
* **A903 observation accounting** — ``observed`` must equal the number
  of recorded task events: the runtime feeds exactly one measured
  duration per committed task, no more (a cancelled hedge loser) and no
  fewer (a dropped feedback hook);
* **A904 bucket drift** — the stamped per-bucket counts must equal the
  counts rebuilt from the DAG through the shared
  :func:`repro.resilience.health.bucket_key` (a mismatch means the
  engines' bucketing drifted — precisely the regression the shared
  helper exists to prevent).

:func:`skew_model_stamp` is the ``--inject skew-model`` corruption for
``make selftest``: it inflates one bucket's count, which must trip
A902/A904.
"""

from __future__ import annotations

from typing import Any

from repro.resilience.health import bucket_key
from repro.runtime.adaptive import MODEL_VERSION
from repro.runtime.tracing import ExecutionTrace
from repro.verify.report import Report

__all__ = ["verify_adaptive", "skew_model_stamp"]

_REQUIRED_FIELDS = (
    "model_version", "cold_start", "seeded", "keys_at_bind",
    "observed", "buckets",
)

_COUNT_FIELDS = ("seeded", "keys_at_bind", "observed")


def _rebuild_buckets(dag: Any, trace: ExecutionTrace) -> dict[str, int]:
    """Per-bucket task-event counts derived from the trace + DAG."""
    counts: dict[str, int] = {}
    for e in trace.sorted_events():
        t = int(e.task)
        key = bucket_key(int(dag.kind[t]), float(dag.flops[t]))
        counts[key] = counts.get(key, 0) + 1
    return counts


def verify_adaptive(
    dag: Any, trace: ExecutionTrace, *, name: str = "adaptive"
) -> Report:
    """Audit ``trace.meta["adaptive"]`` against the trace's events."""
    rep = Report(name)
    stamp = trace.meta.get("adaptive")
    sched = trace.meta.get("scheduler")

    if stamp is None:
        if sched == "adaptive":
            rep.add(
                "A901",
                "scheduler 'adaptive' produced this trace but no "
                "meta['adaptive'] model stamp was recorded",
            )
        return rep
    if sched != "adaptive":
        rep.add(
            "A901",
            f"meta['adaptive'] stamp present on a trace produced by "
            f"scheduler {sched!r} (forged provenance)",
        )
        return rep

    if not isinstance(stamp, dict):
        rep.add("A902", f"meta['adaptive'] is {type(stamp).__name__}, "
                        "not a stamp dict")
        return rep
    missing = [f for f in _REQUIRED_FIELDS if f not in stamp]
    if missing:
        rep.add("A902", f"stamp missing field(s) {missing}")
        return rep
    version = stamp["model_version"]
    if not isinstance(version, int) or not 1 <= version <= MODEL_VERSION:
        rep.add(
            "A902",
            f"unsupported model_version {version!r} "
            f"(this auditor understands 1..{MODEL_VERSION})",
        )
    for field in _COUNT_FIELDS:
        val = stamp[field]
        if not isinstance(val, int) or val < 0:
            rep.add("A902", f"stamp field {field!r} is {val!r}, "
                            "not a non-negative integer")
    buckets = stamp["buckets"]
    if not isinstance(buckets, dict) or any(
        not isinstance(v, int) or v < 0 for v in buckets.values()
    ):
        rep.add("A902", "stamp 'buckets' is not a dict of "
                        "non-negative integer counts")
        return rep
    total = sum(buckets.values())
    if total != stamp["observed"]:
        rep.add(
            "A902",
            f"bucket counts sum to {total} but 'observed' claims "
            f"{stamp['observed']}",
        )

    n_events = len(trace.events)
    if stamp["observed"] != n_events:
        rep.add(
            "A903",
            f"stamp claims {stamp['observed']} observed duration(s) "
            f"but the trace records {n_events} task event(s) — the "
            "feedback hook must fire exactly once per committed task",
        )

    rebuilt = _rebuild_buckets(dag, trace)
    if rebuilt != buckets:
        drifted = sorted(
            k for k in set(rebuilt) | set(buckets)
            if rebuilt.get(k, 0) != buckets.get(k, 0)
        )
        rep.add(
            "A904",
            f"stamped bucket counts disagree with the counts rebuilt "
            f"from the trace via bucket_key on {len(drifted)} key(s): "
            f"{drifted[:8]}",
        )

    rep.stats["n_events"] = float(n_events)
    rep.stats["n_buckets"] = float(len(buckets))
    rep.stats["cold_start"] = float(bool(stamp.get("cold_start")))
    return rep


def skew_model_stamp(trace: ExecutionTrace) -> ExecutionTrace:
    """Corrupt ``trace`` by inflating one stamped bucket count.

    Models a drifted bucketing (or a feedback hook double-firing): the
    returned trace must fail A902 (sum mismatch) and A904 (bucket
    drift).  Raises ``ValueError`` when the trace carries no adaptive
    stamp with at least one bucket.
    """
    stamp = trace.meta.get("adaptive")
    if not isinstance(stamp, dict) or not stamp.get("buckets"):
        raise ValueError(
            "trace has no adaptive model stamp with buckets to skew "
            "(run with scheduler='adaptive')"
        )
    forged = dict(stamp)
    buckets = dict(forged["buckets"])
    key = sorted(buckets)[0]
    buckets[key] = int(buckets[key]) + 1
    forged["buckets"] = buckets
    meta = dict(trace.meta)
    meta["adaptive"] = forged
    return ExecutionTrace(
        events=list(trace.events),
        transfers=list(trace.transfers),
        data_events=list(trace.data_events),
        fault_events=list(trace.fault_events),
        recovery_events=list(trace.recovery_events),
        sync_events=list(trace.sync_events),
        health_events=list(trace.health_events),
        hedge_events=list(trace.hedge_events),
        meta=meta,
    )
