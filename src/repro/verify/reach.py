"""Fast DAG reachability for hazard-coverage queries.

Checking that every hazard pair is covered by a dependency *path* needs
many reachability queries on DAGs that reach hundreds of thousands of
tasks, so pairwise BFS is off the table.  The oracle combines three
standard labelings, each O(V+E) to build:

1. **Topological ranks** — ``u ⇝ v`` implies ``rank[u] < rank[v]``, so a
   rank inversion is an immediate, *exact* "no path".
2. **Direct-edge index** — the sorted array of ``u·n + v`` edge keys
   answers "is (u, v) an edge?" for whole query batches at once (in a
   well-formed builder DAG every hazard pair is a direct edge, so this
   fast path usually decides everything).
3. **GRAIL-style interval labels** — a handful of DFS post-order
   traversals with different child orders.  Each traversal assigns
   ``label(v) = [low(v), post(v)]`` with ``low(v)`` the minimum
   post-order index in ``v``'s reachable set; ``u ⇝ v`` implies
   ``label(v) ⊆ label(u)``.  Containment failure in *any* traversal is
   an exact "no path"; containment in all of them is confirmed by a
   pruned DFS (descending only into nodes that could still contain the
   target's label and precede it topologically).

The result is exact in both directions: positives are confirmed by the
pruned DFS, negatives follow from rank or interval exclusion.
"""

from __future__ import annotations

import numpy as np

from repro.dag.tasks import TaskDAG

__all__ = ["ReachabilityOracle"]


class ReachabilityOracle:
    """Answers ``u ⇝ v`` queries on a DAG (requires acyclicity).

    Parameters
    ----------
    dag:
        The task DAG.  Its ``succ_ptr``/``succ_list`` CSR adjacency and a
        topological order (``order``, precomputed by the caller so cycle
        errors surface before the oracle is built) are all that is used.
    n_labelings:
        Number of independent interval labelings (more labelings prune
        more false positives before the DFS fallback fires).
    """

    def __init__(
        self,
        dag: TaskDAG,
        order: np.ndarray | None = None,
        *,
        n_labelings: int = 2,
    ) -> None:
        self.n = dag.n_tasks
        self.succ_ptr = dag.succ_ptr
        self.succ_list = dag.succ_list
        order = dag.topological_order() if order is None else order
        self.rank = np.empty(self.n, dtype=np.int64)
        self.rank[order] = np.arange(self.n, dtype=np.int64)
        self._order = order
        # Sorted edge-key index for batched direct-edge tests.
        heads = np.repeat(
            np.arange(self.n, dtype=np.int64), np.diff(self.succ_ptr)
        )
        self._edge_keys = np.sort(heads * np.int64(self.n) + self.succ_list)
        self._n_labelings = n_labelings
        self._labels: list[tuple[np.ndarray, np.ndarray]] | None = None
        self.stats = {"dfs_fallbacks": 0}

    # ------------------------------------------------------------------
    def has_edge_many(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Vectorized "is (u, v) a direct edge" for query batches."""
        keys = us.astype(np.int64) * np.int64(self.n) + vs.astype(np.int64)
        pos = np.searchsorted(self._edge_keys, keys)
        if self._edge_keys.size == 0:
            return np.zeros(keys.size, dtype=bool)
        pos_c = np.minimum(pos, self._edge_keys.size - 1)
        return (pos < self._edge_keys.size) & (self._edge_keys[pos_c] == keys)

    # ------------------------------------------------------------------
    def _build_labels(self) -> list[tuple[np.ndarray, np.ndarray]]:
        if self._labels is not None:
            return self._labels
        labels = []
        for i in range(self._n_labelings):
            post = self._postorder(variant=i)
            low = post.copy()
            # low(v) = min(post(v), min low(children)) — one reverse-topo
            # sweep, since every child is ranked after its parent.
            ptr, lst = self.succ_ptr, self.succ_list
            for v in self._order[::-1]:
                b, e = int(ptr[v]), int(ptr[v + 1])
                if e > b:
                    m = low[lst[b:e]].min()
                    if m < low[v]:
                        low[v] = m
            labels.append((low, post))
        self._labels = labels
        return labels

    def _postorder(self, *, variant: int) -> np.ndarray:
        """Iterative DFS post-order over the whole DAG.

        ``variant`` permutes both the root order and the child order so
        the labelings are independent enough to prune different pairs.
        """
        ptr, lst = self.succ_ptr, self.succ_list
        n = self.n
        post = np.full(n, -1, dtype=np.int64)
        counter = 0
        roots = [int(r) for r in self._order if self.rank[r] >= 0]
        # Only true sources need to seed the DFS; any leftover unvisited
        # node is seeded afterwards (defensive — cannot happen in a DAG).
        indeg = np.zeros(n, dtype=np.int64)
        np.add.at(indeg, lst, 1)
        roots = [v for v in roots if indeg[v] == 0]
        if variant % 2 == 1:
            roots = roots[::-1]
        visited = np.zeros(n, dtype=bool)
        for root in roots:
            if visited[root]:
                continue
            # Stack of (node, next-child-cursor).
            stack = [(root, 0)]
            visited[root] = True
            while stack:
                v, cursor = stack[-1]
                b, e = int(ptr[v]), int(ptr[v + 1])
                children = lst[b:e]
                if variant % 2 == 1:
                    children = children[::-1]
                advanced = False
                while cursor < children.size:
                    c = int(children[cursor])
                    cursor += 1
                    if not visited[c]:
                        stack[-1] = (v, cursor)
                        visited[c] = True
                        stack.append((c, 0))
                        advanced = True
                        break
                if not advanced:
                    if cursor >= children.size:
                        post[v] = counter
                        counter += 1
                        stack.pop()
                    else:
                        stack[-1] = (v, cursor)
        # Defensive sweep for nodes unreachable from any source.
        for v in range(n):
            if post[v] < 0:
                post[v] = counter
                counter += 1
        return post

    # ------------------------------------------------------------------
    def reachable_many(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Exact batched ``u ⇝ v`` (paths of length >= 1)."""
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        out = np.zeros(us.size, dtype=bool)
        if us.size == 0:
            return out
        maybe = self.rank[us] < self.rank[vs]
        direct = np.zeros(us.size, dtype=bool)
        direct[maybe] = self.has_edge_many(us[maybe], vs[maybe])
        out |= direct
        rest = np.flatnonzero(maybe & ~direct)
        if rest.size == 0:
            return out
        labels = self._build_labels()
        undecided = np.ones(rest.size, dtype=bool)
        for low, post in labels:
            undecided &= (low[us[rest]] <= low[vs[rest]]) & (
                post[vs[rest]] <= post[us[rest]]
            )
        for idx in rest[undecided]:
            out[idx] = self._dfs(int(us[idx]), int(vs[idx]), labels)
        return out

    def reachable(self, u: int, v: int) -> bool:
        return bool(self.reachable_many(np.array([u]), np.array([v]))[0])

    def _dfs(self, u: int, v: int, labels) -> bool:
        """Pruned DFS confirming containment-positive pairs."""
        self.stats["dfs_fallbacks"] += 1
        rank, ptr, lst = self.rank, self.succ_ptr, self.succ_list
        rv = rank[v]
        seen = {u}
        stack = [u]
        while stack:
            w = stack.pop()
            for c in lst[int(ptr[w]): int(ptr[w + 1])]:
                c = int(c)
                if c == v:
                    return True
                if c in seen or rank[c] >= rv:
                    continue
                contained = True
                for low, post in labels:
                    if not (low[c] <= low[v] and post[v] <= post[c]):
                        contained = False
                        break
                if contained:
                    seen.add(c)
                    stack.append(c)
        return False
