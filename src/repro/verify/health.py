"""Graceful-degradation auditor (R7xx): health tracking and hedging.

The health layer (:mod:`repro.resilience.health`) claims that limping
workers are detected, quarantined workers receive no work, and that
speculative (hedged) re-execution commits each task's side effects
exactly once.  This pass re-checks those claims from the
:class:`~repro.runtime.tracing.ExecutionTrace` alone — health and hedge
bookkeeping bugs cannot vouch for themselves.

Checks:

* **R701 exactly-once commit** — a hedged task (one with a ``launch``
  :class:`~repro.runtime.tracing.HedgeEvent`) has exactly one recorded
  completion, and it sits on the winning attempt's resource;
* **R702 legal transitions** — each resource's recorded health chain
  starts at ``healthy`` and every consecutive ``src -> dst`` pair is an
  edge of :data:`repro.resilience.health.LEGAL_TRANSITIONS`, taken at
  non-decreasing times;
* **R703 quarantine respected** — no task starts (and no hedge
  duplicate launches) on a resource inside one of its quarantine
  windows ``[t(-> quarantined), t(quarantined ->))``;
* **R704 hedge accounting** — every launch resolves into exactly one
  ``win`` plus at least one ``cancel``, no win or cancel exists without
  its launch, and the resolution order is sane (launch <= win, and no
  cancelled resource also records the completion);
* **R705 monitoring-off identity** — a trace produced without health
  monitoring (no ``meta["health"]`` stamp) carries zero health and
  hedge events, and a run with hedging disabled carries zero hedge
  events.
"""

from __future__ import annotations

from repro.resilience.health import HEALTH_STATES, LEGAL_TRANSITIONS
from repro.runtime.tracing import ExecutionTrace, HealthEvent, TraceEvent
from repro.verify.report import Report

__all__ = [
    "verify_health",
    "double_commit_hedge",
    "steal_from_quarantined",
    "illegal_transition",
]


def _quarantine_windows(
    health_events: list[HealthEvent],
) -> dict[str, list[tuple[float, float]]]:
    """Per-resource ``[enter, exit)`` quarantine windows from the
    recorded transition chain (exit = next transition out, else inf)."""
    windows: dict[str, list[tuple[float, float]]] = {}
    entered: dict[str, float] = {}
    for e in health_events:
        if e.dst == "quarantined":
            entered.setdefault(e.resource, e.time)
        elif e.src == "quarantined" and e.resource in entered:
            windows.setdefault(e.resource, []).append(
                (entered.pop(e.resource), e.time)
            )
    for res, t0 in entered.items():
        windows.setdefault(res, []).append((t0, float("inf")))
    return windows


def verify_health(
    trace: ExecutionTrace,
    *,
    tol: float = 1e-12,
    max_reported: int = 25,
    name: str = "health",
) -> Report:
    """Audit ``trace``'s health-transition and hedge streams (R7xx)."""
    report = Report(name)
    health = trace.sorted_health_events()
    hedges = trace.sorted_hedge_events()
    report.stats["health_events"] = float(len(health))
    report.stats["hedge_events"] = float(len(hedges))

    # ------------------------------------------------------------- R705
    # Monitoring off must mean byte-identical behavior; the trace-level
    # shadow of that claim is "no events at all".
    meta = trace.meta.get("health")
    if meta is None:
        for e in (health + hedges)[:max_reported]:
            report.add(
                "R705",
                f"{type(e).__name__} recorded on {e.resource} at "
                f"t={e.time:.6g} but the trace carries no "
                "meta['health'] stamp (monitoring was off)",
            )
        # Without monitoring none of the remaining checks can fire.
        return report
    if not meta.get("hedge", False):
        for e in hedges[:max_reported]:
            report.add(
                "R705",
                f"hedge {e.kind!r} of task {e.task} on {e.resource} at "
                f"t={e.time:.6g} but meta['health'] says hedging was "
                "disabled",
                tasks=(e.task,),
            )

    # ------------------------------------------------------------- R702
    n_bad = 0
    by_resource: dict[str, list[HealthEvent]] = {}
    for e in health:
        by_resource.setdefault(e.resource, []).append(e)
    for res, chain in sorted(by_resource.items()):
        prev = "healthy"
        prev_t = float("-inf")
        for e in chain:
            if e.src not in HEALTH_STATES or e.dst not in HEALTH_STATES:
                if n_bad < max_reported:
                    report.add(
                        "R702",
                        f"{res}: unknown health state in transition "
                        f"{e.src!r} -> {e.dst!r} at t={e.time:.6g}",
                    )
                n_bad += 1
                prev, prev_t = e.dst, e.time
                continue
            if e.src != prev:
                if n_bad < max_reported:
                    report.add(
                        "R702",
                        f"{res}: transition chain breaks at "
                        f"t={e.time:.6g}: recorded {e.src} -> {e.dst} "
                        f"but the resource was in state {prev!r}",
                    )
                n_bad += 1
            elif (e.src, e.dst) not in LEGAL_TRANSITIONS:
                if n_bad < max_reported:
                    report.add(
                        "R702",
                        f"{res}: illegal transition {e.src} -> {e.dst} "
                        f"at t={e.time:.6g} (not an edge of the health "
                        "state machine)",
                    )
                n_bad += 1
            if e.time < prev_t - tol:
                if n_bad < max_reported:
                    report.add(
                        "R702",
                        f"{res}: transition at t={e.time:.6g} predates "
                        f"the previous one at t={prev_t:.6g}",
                    )
                n_bad += 1
            prev, prev_t = e.dst, e.time
    report.stats["resources_tracked"] = float(len(by_resource))

    # ------------------------------------------------------------- R703
    windows = _quarantine_windows(health)
    n_quar = 0
    if windows:
        for ev in trace.sorted_events():
            for (t0, t1) in windows.get(ev.resource, ()):
                if t0 - tol <= ev.start < t1 - tol:
                    if n_quar < max_reported:
                        report.add(
                            "R703",
                            f"task {ev.task} starts on {ev.resource} at "
                            f"t={ev.start:.6g}, inside its quarantine "
                            f"window [{t0:.6g}, "
                            f"{'inf' if t1 == float('inf') else format(t1, '.6g')})",
                            tasks=(ev.task,),
                        )
                    n_quar += 1
        for h in hedges:
            if h.kind != "launch":
                continue
            for (t0, t1) in windows.get(h.resource, ()):
                if t0 - tol <= h.time < t1 - tol:
                    if n_quar < max_reported:
                        report.add(
                            "R703",
                            f"hedge duplicate of task {h.task} launched "
                            f"on quarantined {h.resource} at "
                            f"t={h.time:.6g}",
                            tasks=(h.task,),
                        )
                    n_quar += 1
    report.stats["quarantine_windows"] = float(
        sum(len(w) for w in windows.values())
    )

    # ----------------------------------------------------- R701 + R704
    completions: dict[int, list[TraceEvent]] = {}
    for ev in trace.sorted_events():
        completions.setdefault(ev.task, []).append(ev)
    by_task: dict[int, dict[str, list]] = {}
    for h in hedges:
        by_task.setdefault(h.task, {}).setdefault(h.kind, []).append(h)
    n_hedged = 0
    for t, kinds in sorted(by_task.items()):
        launches = kinds.get("launch", [])
        wins = kinds.get("win", [])
        cancels = kinds.get("cancel", [])
        if not launches:
            for h in (wins + cancels)[:max_reported]:
                report.add(
                    "R704",
                    f"hedge {h.kind!r} of task {t} on {h.resource} at "
                    f"t={h.time:.6g} without a recorded launch",
                    tasks=(t,),
                )
            continue
        n_hedged += 1
        if len(wins) != 1:
            report.add(
                "R704",
                f"hedged task {t} resolved into {len(wins)} wins "
                "(expected exactly one)",
                tasks=(t,),
            )
        if not cancels:
            report.add(
                "R704",
                f"hedged task {t} has a launch but no cancelled "
                "attempt (the losing side vanished)",
                tasks=(t,),
            )
        if wins and launches and \
                wins[0].time < min(la.time for la in launches) - tol:
            report.add(
                "R704",
                f"hedged task {t} wins at t={wins[0].time:.6g}, before "
                f"its launch at "
                f"t={min(la.time for la in launches):.6g}",
                tasks=(t,),
            )
        evs = completions.get(t, [])
        if len(evs) != 1:
            report.add(
                "R701",
                f"hedged task {t} recorded {len(evs)} completions "
                "(the commit gate admits exactly one)",
                tasks=(t,),
            )
        elif wins and evs[0].resource != wins[0].resource:
            report.add(
                "R701",
                f"hedged task {t} completed on {evs[0].resource} but "
                f"the win was recorded on {wins[0].resource}",
                tasks=(t,),
            )
        cancelled_res = {c.resource for c in cancels}
        for ev in evs:
            if wins and ev.resource in cancelled_res \
                    and ev.resource != wins[0].resource:
                report.add(
                    "R701",
                    f"hedged task {t} has a completion on cancelled "
                    f"attempt's resource {ev.resource}",
                    tasks=(t,),
                )
    report.stats["hedged_tasks"] = float(n_hedged)
    return report


# ----------------------------------------------------------------------
# fault injectors (verify-the-verifier)
# ----------------------------------------------------------------------
def _clone(trace: ExecutionTrace, **overrides) -> ExecutionTrace:
    fields = dict(
        events=list(trace.events),
        transfers=list(trace.transfers),
        data_events=list(trace.data_events),
        fault_events=list(trace.fault_events),
        recovery_events=list(trace.recovery_events),
        sync_events=list(trace.sync_events),
        health_events=list(trace.health_events),
        hedge_events=list(trace.hedge_events),
        meta=dict(trace.meta),
    )
    fields.update(overrides)
    return ExecutionTrace(**fields)


def double_commit_hedge(trace: ExecutionTrace) -> ExecutionTrace:
    """Corrupt ``trace`` by committing a hedged task twice: the losing
    attempt's completion is recorded as if the gate admitted it.  The
    returned trace must fail R701.  Raises ``ValueError`` when the
    trace has no resolved hedge (a launch with a win and a cancel)."""
    hedges = trace.sorted_hedge_events()
    wins = {h.task: h for h in hedges if h.kind == "win"}
    loser = next(
        (h for h in hedges if h.kind == "cancel" and h.task in wins), None
    )
    if loser is None:
        raise ValueError("trace has no resolved hedge to double-commit")
    orig = next(e for e in trace.events if e.task == loser.task)
    clone = TraceEvent(loser.task, loser.resource, loser.time,
                       loser.time + max(orig.duration, 1e-12))
    return _clone(trace, events=list(trace.events) + [clone])


def steal_from_quarantined(trace: ExecutionTrace) -> ExecutionTrace:
    """Corrupt ``trace`` by dispatching a task onto a quarantined
    worker mid-window (as a steal-filter bug would).  The returned
    trace must fail R703.  Raises ``ValueError`` when no quarantine
    window was recorded."""
    windows = _quarantine_windows(trace.sorted_health_events())
    if not windows:
        raise ValueError("trace has no quarantine window to violate")
    res = sorted(windows)[0]
    t0, t1 = windows[res][0]
    if t1 == float("inf"):
        t1 = max(t0, trace.makespan) + 1.0
    mid = 0.5 * (t0 + t1)
    donor = trace.sorted_events()[-1]
    clone = TraceEvent(donor.task, res, mid,
                       mid + min(donor.duration, 0.25 * (t1 - t0)))
    return _clone(trace, events=list(trace.events) + [clone])


def illegal_transition(trace: ExecutionTrace) -> ExecutionTrace:
    """Corrupt ``trace`` by appending a health transition that is not
    an edge of the state machine (``healthy -> quarantined``, skipping
    the escalation chain).  The returned trace must fail R702.  Raises
    ``ValueError`` when the trace has no health events at all (nothing
    monitored, so the corruption would instead trip R705)."""
    health = trace.sorted_health_events()
    if not health:
        raise ValueError("trace has no health events to corrupt")
    last = health[-1]
    bad = HealthEvent(last.resource, "healthy", "quarantined",
                      last.time + 1e-9, 0.0, "corrupt")
    return _clone(trace,
                  health_events=list(trace.health_events) + [bad])
