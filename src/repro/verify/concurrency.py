"""Concurrency auditor (C7xx): happens-before race detection for the
real threaded runtime.

The threaded engine hand-rolls exactly the synchronization the paper
delegates to StarPU/PaRSEC — per-worker deques, a narrowed scatter-add
mutex per facing panel, evented worker parking, opt-in fan-in batching.
This pass replays the :class:`~repro.runtime.tracing.SyncEvent` stream
recorded by ``factorize_threaded(..., record_sync=True)`` together with
the task events and *proves* (or refutes) that every concurrent write
was ordered by a lock hand-off or a completion publish.

The model is a vector-clock happens-before relation over per-worker
operation sequences.  Operations are task executions and mutex hold
windows; edges are

* **program order** — operations of one worker, in time order;
* **lock hand-off** — consecutive disjoint hold windows of one lock
  object (two *overlapping* holds of one object are a mutual-exclusion
  violation and flagged directly);
* **publish order** — a DAG edge ``u -> v`` whose trace timestamps are
  consistent (``end(u) <= start(v) + tol``).

Checks:

* **C701 unordered conflicting write** — two tasks in one mutex group
  (scatter-adds into one facing panel; one solve vector region) ran on
  different workers with no happens-before path between their write
  operations, or two hold windows of one lock object overlap in time;
* **C702 read of unpublished completion** — a task started before some
  predecessor's completion was published to the pool (its dependency
  counter was decremented on state the reader could not yet see);
* **C703 scatter outside the update lock** — a task in a mutex group
  has no hold window (and no accumulator flush, and no recorded "no
  contribution" no-op) on its own mutex object: the write happened
  outside the lock;
* **C704 accumulator flush racing its drain** — a batched update's
  completion was published before the batch's locked flush committed
  its contribution to the panel;
* **C705 lost wakeup** — a worker parked past the horizon while a task
  that had been ready since before the park sat unstarted until after
  the park ended (the runtime's park timeout bounds honest naps far
  below the horizon);
* **C706 lock-order cycle** — the nested-hold graph (lock A held while
  acquiring lock B) contains a cycle; the runtime's discipline is one
  lock at a time, so *any* nesting is already reported as a warning;
* **C707 sync provenance** — the ``sync_stats`` summary the engine
  stamped into ``trace.meta`` (event counts, lock-held/wait totals)
  must match what this pass recomputes from the events; a mismatch
  means the trace was edited after the run.

A trace without ``meta["sync_trace"]`` is not auditable (no lock
windows were recorded) — the pass reports that as an INFO finding and
abstains rather than guessing.
"""

from __future__ import annotations

from typing import Optional

from repro.dag.tasks import TaskDAG
from repro.runtime.tracing import ExecutionTrace, SyncEvent, TraceEvent
from repro.verify.report import INFO, WARNING, Report

__all__ = [
    "verify_concurrency",
    "drop_sync_event",
    "unlocked_scatter",
    "swallow_wakeup",
]

#: A park window at least this long, spanning a ready task's idle wait,
#: is a lost wakeup (C705).  The runtime's park timeout is 0.02 s, so an
#: honest nap never comes close.
PARK_HORIZON_S = 0.1


class _Op:
    """One operation in the happens-before model."""

    __slots__ = ("worker", "start", "end", "task", "obj", "index", "seq")

    def __init__(self, worker: int, start: float, end: float,
                 task: int, obj: Optional[str]) -> None:
        self.worker = worker
        self.start = start
        self.end = end
        self.task = task
        self.obj = obj          # lock object for hold ops, None for exec
        self.index = -1         # global index after sorting
        self.seq = 0            # per-worker sequence number (1-based)


def _exec_worker(resource: str) -> int:
    """Worker index of a threaded-engine resource (``"cpu3"`` -> 3)."""
    if resource.startswith("cpu"):
        try:
            return int(resource[3:])
        except ValueError:
            return -1
    return -1


def _mutex_obj(dag: TaskDAG, group: int) -> str:
    """The lock-object name the runtime uses for one mutex group."""
    return (f"panel{group}" if getattr(dag, "phase", "facto") == "facto"
            else f"mutex{group}")


def verify_concurrency(
    dag: TaskDAG,
    trace: ExecutionTrace,
    *,
    park_horizon_s: float = PARK_HORIZON_S,
    tol: float = 1e-9,
    max_reported: int = 25,
    name: str = "concurrency",
) -> Report:
    """Audit ``trace``'s synchronization against ``dag`` (C7xx)."""
    report = Report(name)
    sync = trace.sorted_sync_events()
    report.stats["sync_events"] = float(len(sync))

    if not trace.meta.get("sync_trace"):
        report.add(
            "C700",
            "trace carries no sync instrumentation "
            "(meta['sync_trace'] unset); concurrency audit abstains — "
            "re-run with record_sync=True",
            severity=INFO,
        )
        return report

    holds = [e for e in sync if e.kind == "lock"]
    flushes = [e for e in sync if e.kind == "flush"]
    noops = {e.task for e in sync if e.kind == "noop"}
    parks = [e for e in sync if e.kind == "park"]
    publish: dict[int, float] = {}
    for e in sync:
        if e.kind == "publish" and e.task >= 0:
            # Last publish wins (retries republish after re-execution).
            publish[e.task] = e.start
    report.stats["lock_windows"] = float(len(holds))
    report.stats["parks"] = float(len(parks))
    held = trace.lock_held_time()
    report.stats["lock_held_s"] = float(sum(held.values()))

    # ------------------------------------------------------- operations
    exec_of: dict[int, _Op] = {}
    ops: list[_Op] = []
    for ev in trace.sorted_events():
        w = _exec_worker(ev.resource)
        op = _Op(w, ev.start, ev.end, ev.task, None)
        ops.append(op)
        exec_of[ev.task] = op       # retries: the last (successful) run
    hold_ops: list[_Op] = []
    for e in holds:
        op = _Op(e.worker, e.start, e.end, e.task, e.obj)
        ops.append(op)
        hold_ops.append(op)
    ops.sort(key=lambda o: (o.start, o.end, o.worker, o.task))
    for i, op in enumerate(ops):
        op.index = i

    n_workers = max(
        int(trace.meta.get("n_workers", 0)),
        max((o.worker for o in ops), default=-1) + 1,
        1,
    )

    # ------------------------------------------------------------ edges
    in_edges: list[list[int]] = [[] for _ in ops]
    last_of_worker: list[int] = [-1] * n_workers
    for op in ops:
        if 0 <= op.worker < n_workers:
            prev = last_of_worker[op.worker]
            if prev >= 0:
                in_edges[op.index].append(prev)
            last_of_worker[op.worker] = op.index

    # Lock hand-off chains; overlapping holds of one object are a
    # direct mutual-exclusion violation (C701).
    by_obj: dict[str, list[_Op]] = {}
    for op in hold_ops:
        assert op.obj is not None
        by_obj.setdefault(op.obj, []).append(op)
    n_overlap = 0
    for obj, chain in sorted(by_obj.items()):
        chain.sort(key=lambda o: (o.start, o.end))
        for a, b in zip(chain, chain[1:]):
            if a.end <= b.start + tol:
                if a.index < b.index:
                    in_edges[b.index].append(a.index)
            elif a.task != b.task or a.worker != b.worker:
                n_overlap += 1
                if n_overlap <= max_reported:
                    report.add(
                        "C701",
                        f"two hold windows of {obj} overlap: task "
                        f"{a.task} on worker {a.worker} "
                        f"[{a.start:.6g}, {a.end:.6g}] vs task {b.task} "
                        f"on worker {b.worker} [{b.start:.6g}, "
                        f"{b.end:.6g}] — the mutex did not exclude",
                        tasks=(a.task, b.task),
                    )
    if n_overlap > max_reported:
        report.add("C701", f"... further {n_overlap - max_reported} "
                           "overlapping hold pair(s) suppressed")

    # Publish edges along timestamp-consistent DAG edges.
    for t, op in exec_of.items():
        if not 0 <= t < dag.n_tasks:
            continue
        for p in dag.predecessors(int(t)):
            pu = exec_of.get(int(p))
            if pu is not None and pu.end <= op.start + tol \
                    and pu.index < op.index:
                in_edges[op.index].append(pu.index)

    # ---------------------------------------------------- vector clocks
    clocks: list[list[int]] = [[0] * n_workers for _ in ops]
    seq_of_worker = [0] * n_workers
    for op in ops:
        vc = clocks[op.index]
        for j in in_edges[op.index]:
            other = clocks[j]
            for w in range(n_workers):
                if other[w] > vc[w]:
                    vc[w] = other[w]
        if 0 <= op.worker < n_workers:
            seq_of_worker[op.worker] += 1
            op.seq = seq_of_worker[op.worker]
            vc[op.worker] = op.seq

    def ordered(a: _Op, b: _Op) -> bool:
        if a.worker == b.worker and 0 <= a.worker:
            return True
        before = (0 <= a.worker < n_workers
                  and clocks[b.index][a.worker] >= a.seq)
        after = (0 <= b.worker < n_workers
                 and clocks[a.index][b.worker] >= b.seq)
        return before or after

    # ------------------------------------------- write-op per task (C703)
    # A task's write operation is its hold window if it has one, else
    # the hold window its accumulator flush committed under, else its
    # bare exec event (which C703 flags as unprotected).
    hold_of_task: dict[int, _Op] = {}
    for op in hold_ops:
        if op.task >= 0:
            hold_of_task[op.task] = op
    flush_window: dict[int, SyncEvent] = {}
    for e in flushes:
        flush_window[e.task] = e
    flush_hold: dict[int, _Op] = {}
    for t, e in flush_window.items():
        for op in by_obj.get(e.obj, ()):
            if op.worker == e.worker and abs(op.start - e.start) <= tol \
                    and abs(op.end - e.end) <= tol:
                flush_hold[t] = op
                break

    groups: dict[int, list[int]] = {}
    mutex = getattr(dag, "mutex", None)
    if mutex is not None:
        for t in range(dag.n_tasks):
            g = int(mutex[t])
            if g >= 0 and t in exec_of:
                groups.setdefault(g, []).append(t)

    n_c701 = n_c703 = 0
    for g, members in sorted(groups.items()):
        obj = _mutex_obj(dag, g)
        write_ops: list[tuple[int, _Op]] = []
        for t in members:
            if t in noops:
                continue                      # wrote nothing: exempt
            op = hold_of_task.get(t) or flush_hold.get(t)
            if op is None or op.obj != obj:
                n_c703 += 1
                if n_c703 <= max_reported:
                    where = (f"(hold on {op.obj!r} instead)" if op is not
                             None else "(no hold, flush, or no-op)")
                    report.add(
                        "C703",
                        f"task {t} writes mutex group {g} with no hold "
                        f"window on {obj} {where}: scatter outside the "
                        f"update lock",
                        tasks=(t,),
                    )
                op = exec_of[t]               # best effort for C701
            write_ops.append((t, op))
        # Pairwise happens-before across workers.  Hold windows of one
        # object chain into a total order, so surviving unordered pairs
        # are exactly the writes the lock discipline failed to cover.
        for i in range(len(write_ops)):
            ti, oi = write_ops[i]
            for j in range(i + 1, len(write_ops)):
                tj, oj = write_ops[j]
                if oi is oj or oi.worker == oj.worker:
                    continue
                if not ordered(oi, oj):
                    n_c701 += 1
                    if n_c701 <= max_reported:
                        report.add(
                            "C701",
                            f"conflicting writes to mutex group {g} "
                            f"({obj}) are not ordered: task {ti} "
                            f"(worker {oi.worker}) and task {tj} "
                            f"(worker {oj.worker}) have no "
                            f"happens-before path",
                            tasks=(ti, tj),
                        )
    if n_c701 > max_reported:
        report.add("C701", f"... further {n_c701 - max_reported} "
                           "unordered pair(s) suppressed")
    if n_c703 > max_reported:
        report.add("C703", f"... further {n_c703 - max_reported} "
                           "unprotected write(s) suppressed")

    # ------------------------------------------------------------- C702
    n_c702 = 0
    for t, op in sorted(exec_of.items()):
        if not 0 <= t < dag.n_tasks:
            continue
        for p in dag.predecessors(int(t)):
            pt = publish.get(int(p))
            if pt is not None and op.start + tol < pt:
                n_c702 += 1
                if n_c702 <= max_reported:
                    report.add(
                        "C702",
                        f"task {t} starts at t={op.start:.6g}, before "
                        f"predecessor {int(p)}'s completion was "
                        f"published at t={pt:.6g}",
                        tasks=(t, int(p)),
                    )
    if n_c702 > max_reported:
        report.add("C702", f"... further {n_c702 - max_reported} "
                           "unpublished read(s) suppressed")

    # ------------------------------------------------------------- C704
    for t, e in sorted(flush_window.items()):
        pt = publish.get(t)
        if pt is not None and pt + tol < e.end:
            report.add(
                "C704",
                f"batched update {t}'s completion published at "
                f"t={pt:.6g}, before its accumulator flush committed "
                f"at t={e.end:.6g}: successors could read a panel "
                f"missing this contribution",
                tasks=(t,),
            )

    # ------------------------------------------------------------- C705
    # Ready time of a task: the latest publish among its predecessors
    # (sources are ready at t=0).  A long park fully spanning a ready
    # task's unstarted wait is a swallowed wakeup.
    if parks:
        ready_time: dict[int, float] = {}
        for t, op in exec_of.items():
            if not 0 <= t < dag.n_tasks:
                continue
            preds = dag.predecessors(int(t))
            r = 0.0
            complete = True
            for p in preds:
                pt = publish.get(int(p))
                if pt is None:
                    complete = False
                    break
                r = max(r, pt)
            if complete:
                ready_time[t] = r
        for e in parks:
            if e.duration < park_horizon_s:
                continue
            for t, r in sorted(ready_time.items()):
                op = exec_of[t]
                if r <= e.start + tol and op.start + tol >= e.end:
                    report.add(
                        "C705",
                        f"worker {e.worker} parked for "
                        f"{e.duration:.4g}s [{e.start:.6g}, "
                        f"{e.end:.6g}] while task {t} had been ready "
                        f"since t={r:.6g} and only started at "
                        f"t={op.start:.6g}: lost wakeup",
                        tasks=(t,),
                    )
                    break               # one task per park is enough

    # ------------------------------------------------------------- C706
    # Nested holds: worker held A while acquiring B.  The runtime's
    # discipline is one lock at a time, so nesting itself is warned;
    # a cycle in the nesting graph is a deadlock recipe and an error.
    nest: dict[str, set[str]] = {}
    by_worker: dict[int, list[_Op]] = {}
    for op in hold_ops:
        by_worker.setdefault(op.worker, []).append(op)
    for w, chain in sorted(by_worker.items()):
        chain.sort(key=lambda o: (o.start, o.end))
        open_stack: list[_Op] = []
        for op in chain:
            while open_stack and open_stack[-1].end <= op.start + tol:
                open_stack.pop()
            if open_stack:
                outer = open_stack[-1]
                assert outer.obj is not None and op.obj is not None
                if outer.obj != op.obj:
                    nest.setdefault(outer.obj, set()).add(op.obj)
                    report.add(
                        "C706",
                        f"worker {w} acquired {op.obj} while holding "
                        f"{outer.obj} (tasks {outer.task}, {op.task}); "
                        "the runtime's discipline is one lock at a time",
                        severity=WARNING,
                        tasks=(outer.task, op.task),
                    )
            open_stack.append(op)
    # Cycle detection over the nesting graph.
    state: dict[str, int] = {}
    cycle: list[str] = []

    def _dfs(node: str, path: list[str]) -> bool:
        state[node] = 1
        path.append(node)
        for nxt in sorted(nest.get(node, ())):
            if state.get(nxt, 0) == 1:
                cycle.extend(path[path.index(nxt):] + [nxt])
                return True
            if state.get(nxt, 0) == 0 and _dfs(nxt, path):
                return True
        path.pop()
        state[node] = 2
        return False

    for node in sorted(nest):
        if state.get(node, 0) == 0 and _dfs(node, []):
            report.add(
                "C706",
                "lock-order cycle: " + " -> ".join(cycle),
            )
            break

    # ------------------------------------------------------------- C707
    stamped = trace.meta.get("sync_stats")
    counts: dict[str, int] = {}
    r_held = r_wait = 0.0
    for e in sync:
        counts[e.kind] = counts.get(e.kind, 0) + 1
        if e.kind == "lock":
            r_held += e.duration
            r_wait += e.wait_s
    if stamped is None:
        report.add(
            "C707",
            "trace records sync events but meta['sync_stats'] is "
            "missing: the engine always stamps its summary",
        )
    else:
        if dict(stamped.get("counts", {})) != counts:
            report.add(
                "C707",
                f"meta sync_stats counts {stamped.get('counts')} do not "
                f"match the recorded events {counts}: trace edited "
                "after the run",
            )
        for key, recomputed in (("lock_held_s", r_held),
                                ("lock_wait_s", r_wait)):
            val = float(stamped.get(key, -1.0))
            if abs(val - recomputed) > 1e-6 + 1e-6 * abs(recomputed):
                report.add(
                    "C707",
                    f"meta sync_stats {key}={val:.6g} does not match "
                    f"the recomputed total {recomputed:.6g}",
                )

    report.stats["mutex_groups"] = float(len(groups))
    report.stats["hb_ops"] = float(len(ops))
    return report


# ----------------------------------------------------------------------
# fault injectors (verify-the-verifier)
# ----------------------------------------------------------------------
def _clone(trace: ExecutionTrace,
           events: Optional[list[TraceEvent]] = None,
           sync_events: Optional[list[SyncEvent]] = None,
           meta: Optional[dict] = None) -> ExecutionTrace:
    return ExecutionTrace(
        events=list(trace.events) if events is None else events,
        transfers=list(trace.transfers),
        data_events=list(trace.data_events),
        fault_events=list(trace.fault_events),
        recovery_events=list(trace.recovery_events),
        sync_events=(list(trace.sync_events) if sync_events is None
                     else sync_events),
        meta=dict(trace.meta) if meta is None else meta,
    )


def _restamp(trace: ExecutionTrace) -> ExecutionTrace:
    """Recompute ``meta['sync_stats']`` to match the (edited) events —
    used by injectors that simulate a *runtime* bug, where the engine
    would have stamped self-consistent numbers."""
    counts: dict[str, int] = {}
    held = wait = 0.0
    for e in trace.sync_events:
        counts[e.kind] = counts.get(e.kind, 0) + 1
        if e.kind == "lock":
            held += e.duration
            wait += e.wait_s
    trace.meta["sync_stats"] = {
        "counts": counts, "lock_held_s": held, "lock_wait_s": wait,
    }
    return trace


def drop_sync_event(trace: ExecutionTrace) -> ExecutionTrace:
    """Corrupt ``trace`` by deleting one lock-hold sync event.

    The stamped ``sync_stats`` no longer match the events, so the
    returned trace must fail C707 (and usually C703: the dropped hold
    uncovers its task's scatter).  Raises ``ValueError`` when the trace
    has no lock windows.
    """
    victim = next(
        (e for e in trace.sorted_sync_events() if e.kind == "lock"), None
    )
    if victim is None:
        raise ValueError("trace has no lock-hold sync events to drop")
    kept = [e for e in trace.sync_events if e is not victim]
    return _clone(trace, sync_events=kept)


def unlocked_scatter(trace: ExecutionTrace) -> ExecutionTrace:
    """Corrupt ``trace`` by retagging one panel hold window as a
    different lock object — the recorded scatter now ran outside its
    target's mutex.

    Counts and held-time totals are unchanged (C707 stays quiet); the
    returned trace must fail C703, and fails C701 too whenever program
    and publish order do not coincidentally serialize the pair.  Raises
    ``ValueError`` when no panel/mutex hold window exists.
    """
    sync = trace.sorted_sync_events()
    victim = next(
        (e for e in sync
         if e.kind == "lock"
         and (e.obj.startswith("panel") or e.obj.startswith("mutex"))
         and e.n == 1),
        None,
    )
    if victim is None:
        raise ValueError("trace has no single-task panel hold to retag")
    edited = [
        (SyncEvent(e.kind, e.worker, e.obj + ":phantom", e.task,
                   e.start, e.end, e.wait_s, e.n) if e is victim else e)
        for e in trace.sync_events
    ]
    return _clone(trace, sync_events=edited)


def swallow_wakeup(
    trace: ExecutionTrace,
    dag: TaskDAG,
    horizon_s: float = PARK_HORIZON_S,
) -> ExecutionTrace:
    """Corrupt ``trace`` to look like a lost wakeup: a sink task's
    execution is delayed past the horizon while its worker's park
    window silently spans the whole wait.

    ``sync_stats`` are restamped (a *runtime* bug would have stamped
    self-consistent numbers), so only C705 convicts.  Raises
    ``ValueError`` when no suitable task exists.
    """
    publish = {e.task: e.start for e in trace.sync_events
               if e.kind == "publish" and e.task >= 0}
    victim_ev: Optional[TraceEvent] = None
    ready = 0.0
    for ev in sorted(trace.events, key=lambda e: -e.start):
        t = ev.task
        if not 0 <= t < dag.n_tasks or len(dag.successors(int(t))):
            continue                # need a sink: no downstream reader
        preds = dag.predecessors(int(t))
        if not len(preds):
            continue                # need a real ready transition
        if all(int(p) in publish for p in preds):
            victim_ev = ev
            ready = max(publish[int(p)] for p in preds)
            break
    if victim_ev is None:
        raise ValueError("trace has no published sink task to delay")
    delay = ready + 2.0 * horizon_s - victim_ev.start
    moved = TraceEvent(victim_ev.task, victim_ev.resource,
                       victim_ev.start + delay, victim_ev.end + delay)
    events = [moved if e is victim_ev else e for e in trace.events]
    worker = _exec_worker(victim_ev.resource)
    park = SyncEvent("park", worker, f"worker{worker}", -1,
                     ready, moved.start)
    sync = list(trace.sync_events) + [park]
    # The delayed completion publishes late, too.
    sync = [
        (SyncEvent(e.kind, e.worker, e.obj, e.task,
                   e.start + delay, e.end + delay, e.wait_s, e.n)
         if e.kind == "publish" and e.task == victim_ev.task else e)
        for e in sync
    ]
    return _restamp(_clone(trace, events=events, sync_events=sync))
