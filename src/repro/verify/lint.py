"""Project-invariant linter for ``src/repro`` (AST-based, stdlib only).

Four rules encode invariants the simulation stack depends on; each has a
stable code so findings can be suppressed inline with ``# noqa: RV3xx``
(or a bare ``# noqa``) on the offending line.

* **RV301 frozen-mutation** — no attribute assignment on instances of
  the project's frozen dataclasses (``PolicyTraits``, ``Task``,
  ``TraceEvent``, ...).  ``object.__setattr__(self, ...)`` inside the
  class's own methods is the sanctioned ``__post_init__`` idiom and is
  allowed; any other ``object.__setattr__`` is flagged.
* **RV302 float-equality** — no ``==``/``!=`` between two time-like
  expressions (``time``, ``start``, ``end``, ``makespan``, ...) or
  between a time-like expression and a float literal.  Simulated times
  are accumulated floats; use a tolerance comparison.
* **RV303 policy-traits** — every concrete ``SchedulerPolicy`` subclass
  must define ``traits`` (class attribute or ``self.traits = ...``).
* **RV304 numpy-truthiness** — no boolean test directly on a call known
  to return an array (``np.flatnonzero(x)`` &c.): ambiguous for size
  != 1; test ``.size`` instead.

The discovery pre-pass collects every ``@dataclass(frozen=True)`` class
in the linted tree, so new frozen types are covered automatically.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.verify.report import Report

__all__ = ["LintFinding", "lint_paths", "lint_sources", "lint_report"]

_TIME_NAMES = {
    "time", "start", "end", "makespan", "elapsed", "deadline",
    "start_time", "end_time", "last_time", "link_free", "data_ready",
    "t0", "t1", "when",
}
_TIME_RE = re.compile(r"(^|_)(time|makespan)(_|$)")

_ARRAY_RETURNING = {
    "array", "arange", "zeros", "ones", "empty", "full", "concatenate",
    "flatnonzero", "nonzero", "where", "unique", "diff", "intersect1d",
    "setdiff1d", "union1d", "argsort", "sort", "repeat", "cumsum",
    "asarray", "searchsorted", "minimum", "maximum", "isin",
}

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)


@dataclass(frozen=True)
class LintFinding:
    """One lint diagnostic."""

    path: str
    line: int
    col: int
    code: str
    message: str

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}"


def _is_time_like(node: ast.expr) -> bool:
    """Heuristic: does this expression name a simulation time?"""
    terminal: str | None = None
    if isinstance(node, ast.Name):
        terminal = node.id
    elif isinstance(node, ast.Attribute):
        terminal = node.attr
    elif isinstance(node, ast.Subscript):
        return _is_time_like(node.value)
    elif isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute):
            terminal = func.attr
    if terminal is None:
        return False
    low = terminal.lower()
    return low in _TIME_NAMES or bool(_TIME_RE.search(low))


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_literal(node.operand)
    return False


def _frozen_dataclasses(trees: Iterable[ast.Module]) -> set[str]:
    """Names of every ``@dataclass(frozen=True)`` class in the trees."""
    out: set[str] = set()
    for tree in trees:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for dec in node.decorator_list:
                if (
                    isinstance(dec, ast.Call)
                    and isinstance(dec.func, ast.Name)
                    and dec.func.id == "dataclass"
                ):
                    for kw in dec.keywords:
                        if (
                            kw.arg == "frozen"
                            and isinstance(kw.value, ast.Constant)
                            and kw.value.value is True
                        ):
                            out.add(node.name)
    return out


class _FileLinter(ast.NodeVisitor):
    def __init__(self, path: str, source: str, frozen: set[str]) -> None:
        self.path = path
        self.lines = source.splitlines()
        self.frozen = frozen
        self.findings: list[LintFinding] = []
        #: var name -> frozen class name, per enclosing function scope.
        self._scopes: list[dict[str, str]] = []
        self._class_stack: list[ast.ClassDef] = []

    # -- plumbing ------------------------------------------------------
    def _suppressed(self, line: int, code: str) -> bool:
        if not 1 <= line <= len(self.lines):
            return False
        m = _NOQA_RE.search(self.lines[line - 1])
        if not m:
            return False
        codes = m.group("codes")
        if codes is None:
            return True
        return code in {c.strip().upper() for c in codes.split(",")}

    def _emit(self, node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if self._suppressed(line, code):
            return
        self.findings.append(
            LintFinding(self.path, line, getattr(node, "col_offset", 0),
                        code, message)
        )

    # -- scope tracking ------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(self, node) -> None:
        scope: dict[str, str] = {}
        # Parameters annotated with a frozen dataclass type participate.
        args = node.args
        for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            ann = a.annotation
            if isinstance(ann, ast.Name) and ann.id in self.frozen:
                scope[a.arg] = ann.id
            elif isinstance(ann, ast.Constant) and isinstance(ann.value, str) \
                    and ann.value in self.frozen:
                scope[a.arg] = ann.value
        self._scopes.append(scope)
        self.generic_visit(node)
        self._scopes.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node)
        self._check_policy_traits(node)
        self.generic_visit(node)
        self._class_stack.pop()

    # -- RV301 frozen mutation ----------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        # Track `x = FrozenClass(...)` constructions.
        if (
            self._scopes
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Name)
            and node.value.func.id in self.frozen
        ):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    self._scopes[-1][tgt.id] = node.value.func.id
        for tgt in node.targets:
            self._check_frozen_target(tgt)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_frozen_target(node.target)
        self.generic_visit(node)

    def _check_frozen_target(self, tgt: ast.expr) -> None:
        if not isinstance(tgt, ast.Attribute):
            return
        base = tgt.value
        if isinstance(base, ast.Name) and self._scopes:
            cls = self._scopes[-1].get(base.id)
            if cls is not None:
                self._emit(
                    tgt, "RV301",
                    f"attribute assignment on frozen dataclass {cls} "
                    f"instance `{base.id}` (dataclasses.replace() instead)",
                )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "__setattr__"
            and isinstance(func.value, ast.Name)
            and func.value.id == "object"
        ):
            first = node.args[0] if node.args else None
            is_self = isinstance(first, ast.Name) and first.id == "self"
            if not (is_self and self._class_stack):
                self._emit(
                    node, "RV301",
                    "object.__setattr__ outside a frozen class's own "
                    "methods bypasses immutability",
                )
        self.generic_visit(node)

    # -- RV302 float equality -----------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for op, (lhs, rhs) in zip(node.ops, zip(operands, operands[1:])):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            lt, rt = _is_time_like(lhs), _is_time_like(rhs)
            if (lt and rt) or (lt and _is_float_literal(rhs)) \
                    or (rt and _is_float_literal(lhs)):
                self._emit(
                    node, "RV302",
                    "==/!= between floating-point simulation times; "
                    "compare with a tolerance (abs(a - b) <= tol)",
                )
        self.generic_visit(node)

    # -- RV303 policy traits ------------------------------------------
    def _check_policy_traits(self, node: ast.ClassDef) -> None:
        base_names = {
            b.id if isinstance(b, ast.Name) else getattr(b, "attr", "")
            for b in node.bases
        }
        if "SchedulerPolicy" not in base_names:
            return
        if "ABC" in base_names:
            return
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Assign):
                for tgt in stmt.targets:
                    if isinstance(tgt, ast.Name) and tgt.id == "traits":
                        return
                    if (
                        isinstance(tgt, ast.Attribute)
                        and tgt.attr == "traits"
                        and isinstance(tgt.value, ast.Name)
                        and tgt.value.id == "self"
                    ):
                        return
            if isinstance(stmt, ast.AnnAssign):
                tgt = stmt.target
                if stmt.value is not None and (
                    (isinstance(tgt, ast.Name) and tgt.id == "traits")
                    or (isinstance(tgt, ast.Attribute) and tgt.attr == "traits")
                ):
                    return
        self._emit(
            node, "RV303",
            f"SchedulerPolicy subclass {node.name} never defines `traits`",
        )

    # -- RV304 numpy truthiness ---------------------------------------
    def _check_bool_context(self, expr: ast.expr) -> None:
        if not isinstance(expr, ast.Call):
            return
        func = expr.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("np", "numpy")
            and func.attr in _ARRAY_RETURNING
        ):
            self._emit(
                expr, "RV304",
                f"truth value of np.{func.attr}(...) is ambiguous for "
                "arrays; test `.size` explicitly",
            )

    def visit_If(self, node: ast.If) -> None:
        self._check_bool_context(node.test)
        self.generic_visit(node)

    def visit_While(self, node: ast.While) -> None:
        self._check_bool_context(node.test)
        self.generic_visit(node)

    def visit_Assert(self, node: ast.Assert) -> None:
        self._check_bool_context(node.test)
        self.generic_visit(node)

    def visit_IfExp(self, node: ast.IfExp) -> None:
        self._check_bool_context(node.test)
        self.generic_visit(node)

    def visit_BoolOp(self, node: ast.BoolOp) -> None:
        for value in node.values:
            self._check_bool_context(value)
        self.generic_visit(node)

    def visit_UnaryOp(self, node: ast.UnaryOp) -> None:
        if isinstance(node.op, ast.Not):
            self._check_bool_context(node.operand)
        self.generic_visit(node)


def lint_sources(sources: dict[str, str]) -> list[LintFinding]:
    """Lint a ``{path: source}`` mapping; returns sorted findings."""
    trees: dict[str, ast.Module] = {}
    for path, src in sources.items():
        try:
            trees[path] = ast.parse(src, filename=path)
        except SyntaxError as exc:
            return [LintFinding(path, exc.lineno or 0, exc.offset or 0,
                                "RV300", f"syntax error: {exc.msg}")]
    frozen = _frozen_dataclasses(trees.values())
    findings: list[LintFinding] = []
    for path, tree in trees.items():
        linter = _FileLinter(path, sources[path], frozen)
        linter.visit(tree)
        findings.extend(linter.findings)
    findings.sort(key=lambda f: (f.path, f.line, f.col))
    return findings


def lint_paths(paths: Sequence[str | Path]) -> list[LintFinding]:
    """Lint every ``*.py`` file under the given files/directories."""
    files: list[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    sources = {str(f): f.read_text() for f in files}
    return lint_sources(sources)


def lint_report(paths: Sequence[str | Path]) -> Report:
    """Run the linter and wrap findings in a :class:`Report`."""
    findings = lint_paths(paths)
    report = Report("lint")
    report.stats["files"] = len({f.path for f in findings}) if findings else 0
    report.stats["findings"] = len(findings)
    for f in findings:
        report.add(f.code, f.message, location=f.location)
    return report
