"""Project-invariant linter for ``src/repro`` (AST-based, stdlib only).

Seven rules encode invariants the simulation stack depends on; each has
a stable code so findings can be suppressed inline with ``# noqa: RV3xx``
(or a bare ``# noqa``) on the offending line.

* **RV301 frozen-mutation** — no attribute assignment on instances of
  the project's frozen dataclasses (``PolicyTraits``, ``Task``,
  ``TraceEvent``, ...).  ``object.__setattr__(self, ...)`` inside the
  class's own methods is the sanctioned ``__post_init__`` idiom and is
  allowed; any other ``object.__setattr__`` is flagged.
* **RV302 float-equality** — no ``==``/``!=`` between two time-like
  expressions (``time``, ``start``, ``end``, ``makespan``, ...) or
  between a time-like expression and a float literal.  Simulated times
  are accumulated floats; use a tolerance comparison.
* **RV303 policy-traits** — every concrete ``SchedulerPolicy`` subclass
  must define ``traits`` (class attribute or ``self.traits = ...``).
* **RV304 numpy-truthiness** — no boolean test directly on a call known
  to return an array (``np.flatnonzero(x)`` &c.): ambiguous for size
  != 1; test ``.size`` instead.
* **RV305 mutable-default** — no dataclass field defaulting to a shared
  mutable (``[]``, ``{}``, ``set()``, ``np.zeros(...)``, ...); use
  ``field(default_factory=...)``.  The stdlib only rejects the literal
  ``list``/``dict``/``set`` cases at runtime — an ``np.ndarray`` or
  ``OrderedDict`` default silently aliases across instances.
* **RV306 unordered-iteration** — no bare ``for``/comprehension over a
  ``set``-typed collection: set order varies across processes (hash
  randomization), so any schedule decision derived from it is
  nondeterministic.  Wrap the iterable in ``sorted(...)``.  Covers
  plain set-typed names, subscripts of containers *of* sets
  (``elems[v]`` where ``elems: list[set[int]]``, ``defaultdict(set)``
  values), and zero-argument ``.pop()`` on any of those — ``set.pop()``
  removes a hash-ordered arbitrary element; pick deterministically with
  ``min(...)`` then ``.discard(...)``.
* **RV307 unseeded-random** — no draws from hidden global RNG state
  (legacy ``np.random.<sampler>(...)`` module calls, stdlib
  ``random.<sampler>(...)``) and no RNG constructed without an explicit
  seed (``np.random.default_rng()`` / ``random.Random()`` with no
  arguments).  Every stochastic choice in the simulation stack — fault
  injection above all — must replay bit-identically from a seed.

The discovery pre-pass collects every ``@dataclass(frozen=True)`` class
in the linted tree, so new frozen types are covered automatically;
set-typed names are collected from annotations and ``set()``-valued
assignments per file.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.verify.report import Report

__all__ = ["LintFinding", "lint_paths", "lint_sources", "lint_report"]

_TIME_NAMES = {
    "time", "start", "end", "makespan", "elapsed", "deadline",
    "start_time", "end_time", "last_time", "link_free", "data_ready",
    "t0", "t1", "when",
}
_TIME_RE = re.compile(r"(^|_)(time|makespan)(_|$)")

_ARRAY_RETURNING = {
    "array", "arange", "zeros", "ones", "empty", "full", "concatenate",
    "flatnonzero", "nonzero", "where", "unique", "diff", "intersect1d",
    "setdiff1d", "union1d", "argsort", "sort", "repeat", "cumsum",
    "asarray", "searchsorted", "minimum", "maximum", "isin",
}

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)

#: Constructors whose result is a shared mutable when used as a
#: dataclass default (RV305).
_MUTABLE_CALLS = {
    "list", "dict", "set", "bytearray", "OrderedDict", "defaultdict",
    "deque", "Counter",
}

#: Names that declare a set when they appear as an annotation base
#: (RV306): ``x: set[int]``, ``x: frozenset``, ``x: Set[str]``.
_SET_ANNOTATIONS = {"set", "frozenset", "Set", "FrozenSet", "MutableSet"}

#: stdlib ``random`` module-level samplers that touch the shared global
#: RNG (RV307).
_STDLIB_RANDOM_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular", "vonmisesvariate", "seed", "getrandbits",
    "randbytes",
}


@dataclass(frozen=True)
class LintFinding:
    """One lint diagnostic."""

    path: str
    line: int
    col: int
    code: str
    message: str

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}"


def _terminal_name(node: ast.expr) -> str | None:
    """The rightmost simple name of a ``Name``/``Attribute`` chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_time_like(node: ast.expr) -> bool:
    """Heuristic: does this expression name a simulation time?"""
    terminal: str | None = None
    if isinstance(node, ast.Name):
        terminal = node.id
    elif isinstance(node, ast.Attribute):
        terminal = node.attr
    elif isinstance(node, ast.Subscript):
        return _is_time_like(node.value)
    elif isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute):
            terminal = func.attr
    if terminal is None:
        return False
    low = terminal.lower()
    return low in _TIME_NAMES or bool(_TIME_RE.search(low))


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_literal(node.operand)
    return False


def _is_mutable_default(node: ast.expr) -> bool:
    """Would this dataclass-field default alias across instances?"""
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        f = node.func
        if isinstance(f, ast.Name) and f.id in _MUTABLE_CALLS:
            return True
        if (
            isinstance(f, ast.Attribute)
            and isinstance(f.value, ast.Name)
            and f.value.id in ("np", "numpy")
            and f.attr in _ARRAY_RETURNING
        ):
            return True
    return False


def _annotation_is_set(ann: ast.expr | None) -> bool:
    if ann is None:
        return False
    if isinstance(ann, ast.Subscript):
        return _annotation_is_set(ann.value)
    if isinstance(ann, ast.Name):
        return ann.id in _SET_ANNOTATIONS
    if isinstance(ann, ast.Attribute):
        return ann.attr in _SET_ANNOTATIONS
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        return ann.value.split("[", 1)[0].strip() in _SET_ANNOTATIONS
    return False


def _annotation_contains_set(ann: ast.expr | None) -> bool:
    """Any set base anywhere inside the annotation (``list[set[int]]``)."""
    if ann is None:
        return False
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        return any(
            tok in _SET_ANNOTATIONS
            for tok in re.split(r"[^A-Za-z_.]+", ann.value) if tok
        )
    for node in ast.walk(ann):
        if isinstance(node, ast.Name) and node.id in _SET_ANNOTATIONS:
            return True
        if isinstance(node, ast.Attribute) and node.attr in _SET_ANNOTATIONS:
            return True
    return False


def _set_container_names(tree: ast.Module) -> set[str]:
    """Names holding containers *of* sets (RV306 subscript checks).

    ``idle: list[set[int]]``, ``valid: dict[int, set[str]]`` and
    ``defaultdict(set)`` assignments all qualify: subscripting one
    yields a set, so iterating (or ``.pop()``-ing) the element is
    hash-ordered even though the container itself is ordered.
    """
    names: set[str] = set()
    for node in ast.walk(tree):
        targets: list[ast.expr] = []
        if isinstance(node, ast.AnnAssign):
            if (
                _annotation_contains_set(node.annotation)
                and not _annotation_is_set(node.annotation)
            ):
                targets = [node.target]
        elif isinstance(node, ast.Assign):
            v = node.value
            if (
                isinstance(v, ast.Call)
                and isinstance(v.func, ast.Name)
                and v.func.id == "defaultdict"
                and v.args
                and isinstance(v.args[0], ast.Name)
                and v.args[0].id in ("set", "frozenset")
            ):
                targets = list(node.targets)
        for t in targets:
            if isinstance(t, ast.Name):
                names.add(t.id)
            elif isinstance(t, ast.Attribute):
                names.add(t.attr)
    return names


def _set_typed_names(tree: ast.Module) -> set[str]:
    """Variable/attribute names declared or assigned as sets (RV306)."""
    names: set[str] = set()
    for node in ast.walk(tree):
        targets: list[ast.expr] = []
        if isinstance(node, ast.AnnAssign):
            if _annotation_is_set(node.annotation):
                targets = [node.target]
        elif isinstance(node, ast.Assign):
            v = node.value
            if isinstance(v, (ast.Set, ast.SetComp)) or (
                isinstance(v, ast.Call)
                and isinstance(v.func, ast.Name)
                and v.func.id in ("set", "frozenset")
            ):
                targets = list(node.targets)
        for t in targets:
            if isinstance(t, ast.Name):
                names.add(t.id)
            elif isinstance(t, ast.Attribute):
                names.add(t.attr)
    return names


def _frozen_dataclasses(trees: Iterable[ast.Module]) -> set[str]:
    """Names of every ``@dataclass(frozen=True)`` class in the trees."""
    out: set[str] = set()
    for tree in trees:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for dec in node.decorator_list:
                if (
                    isinstance(dec, ast.Call)
                    and isinstance(dec.func, ast.Name)
                    and dec.func.id == "dataclass"
                ):
                    for kw in dec.keywords:
                        if (
                            kw.arg == "frozen"
                            and isinstance(kw.value, ast.Constant)
                            and kw.value.value is True
                        ):
                            out.add(node.name)
    return out


class _FileLinter(ast.NodeVisitor):
    def __init__(
        self,
        path: str,
        source: str,
        frozen: set[str],
        set_names: set[str] | None = None,
        set_container_names: set[str] | None = None,
    ) -> None:
        self.path = path
        self.lines = source.splitlines()
        self.frozen = frozen
        self.set_names = set_names or set()
        self.set_container_names = set_container_names or set()
        self.findings: list[LintFinding] = []
        #: var name -> frozen class name, per enclosing function scope.
        self._scopes: list[dict[str, str]] = []
        self._class_stack: list[ast.ClassDef] = []

    # -- plumbing ------------------------------------------------------
    def _suppressed(self, line: int, code: str) -> bool:
        if not 1 <= line <= len(self.lines):
            return False
        m = _NOQA_RE.search(self.lines[line - 1])
        if not m:
            return False
        codes = m.group("codes")
        if codes is None:
            return True
        return code in {c.strip().upper() for c in codes.split(",")}

    def _emit(self, node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if self._suppressed(line, code):
            return
        self.findings.append(
            LintFinding(self.path, line, getattr(node, "col_offset", 0),
                        code, message)
        )

    # -- scope tracking ------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(self, node) -> None:
        scope: dict[str, str] = {}
        # Parameters annotated with a frozen dataclass type participate.
        args = node.args
        for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            ann = a.annotation
            if isinstance(ann, ast.Name) and ann.id in self.frozen:
                scope[a.arg] = ann.id
            elif isinstance(ann, ast.Constant) and isinstance(ann.value, str) \
                    and ann.value in self.frozen:
                scope[a.arg] = ann.value
        self._scopes.append(scope)
        self.generic_visit(node)
        self._scopes.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node)
        self._check_policy_traits(node)
        self._check_mutable_defaults(node)
        self.generic_visit(node)
        self._class_stack.pop()

    # -- RV301 frozen mutation ----------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        # Track `x = FrozenClass(...)` constructions.
        if (
            self._scopes
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Name)
            and node.value.func.id in self.frozen
        ):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    self._scopes[-1][tgt.id] = node.value.func.id
        for tgt in node.targets:
            self._check_frozen_target(tgt)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_frozen_target(node.target)
        self.generic_visit(node)

    def _check_frozen_target(self, tgt: ast.expr) -> None:
        if not isinstance(tgt, ast.Attribute):
            return
        base = tgt.value
        if isinstance(base, ast.Name) and self._scopes:
            cls = self._scopes[-1].get(base.id)
            if cls is not None:
                self._emit(
                    tgt, "RV301",
                    f"attribute assignment on frozen dataclass {cls} "
                    f"instance `{base.id}` (dataclasses.replace() instead)",
                )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "__setattr__"
            and isinstance(func.value, ast.Name)
            and func.value.id == "object"
        ):
            first = node.args[0] if node.args else None
            is_self = isinstance(first, ast.Name) and first.id == "self"
            if not (is_self and self._class_stack):
                self._emit(
                    node, "RV301",
                    "object.__setattr__ outside a frozen class's own "
                    "methods bypasses immutability",
                )
        self._check_unseeded_random(node)
        self._check_set_pop(node)
        self.generic_visit(node)

    # -- RV307 unseeded randomness ------------------------------------
    def _check_unseeded_random(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        base = func.value
        if (
            isinstance(base, ast.Attribute)
            and base.attr == "random"
            and isinstance(base.value, ast.Name)
            and base.value.id in ("np", "numpy")
        ):
            # np.random.<something>(...)
            if func.attr == "default_rng":
                if not node.args and not node.keywords:
                    self._emit(
                        node, "RV307",
                        "np.random.default_rng() without a seed is "
                        "nondeterministic; pass an explicit seed",
                    )
            elif func.attr[:1].islower():
                self._emit(
                    node, "RV307",
                    f"legacy np.random.{func.attr}(...) draws from hidden "
                    "global state; use a seeded np.random.default_rng(seed)",
                )
        elif isinstance(base, ast.Name) and base.id == "random":
            # stdlib random.<something>(...)
            if func.attr == "Random":
                if not node.args:
                    self._emit(
                        node, "RV307",
                        "random.Random() without a seed is "
                        "nondeterministic; pass an explicit seed",
                    )
            elif func.attr in _STDLIB_RANDOM_FNS:
                self._emit(
                    node, "RV307",
                    f"module-level random.{func.attr}(...) uses the shared "
                    "global RNG; use a seeded generator instead",
                )

    # -- RV302 float equality -----------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for op, (lhs, rhs) in zip(node.ops, zip(operands, operands[1:])):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            lt, rt = _is_time_like(lhs), _is_time_like(rhs)
            if (lt and rt) or (lt and _is_float_literal(rhs)) \
                    or (rt and _is_float_literal(lhs)):
                self._emit(
                    node, "RV302",
                    "==/!= between floating-point simulation times; "
                    "compare with a tolerance (abs(a - b) <= tol)",
                )
        self.generic_visit(node)

    # -- RV303 policy traits ------------------------------------------
    def _check_policy_traits(self, node: ast.ClassDef) -> None:
        base_names = {
            b.id if isinstance(b, ast.Name) else getattr(b, "attr", "")
            for b in node.bases
        }
        if "SchedulerPolicy" not in base_names:
            return
        if "ABC" in base_names:
            return
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Assign):
                for tgt in stmt.targets:
                    if isinstance(tgt, ast.Name) and tgt.id == "traits":
                        return
                    if (
                        isinstance(tgt, ast.Attribute)
                        and tgt.attr == "traits"
                        and isinstance(tgt.value, ast.Name)
                        and tgt.value.id == "self"
                    ):
                        return
            if isinstance(stmt, ast.AnnAssign):
                tgt = stmt.target
                if stmt.value is not None and (
                    (isinstance(tgt, ast.Name) and tgt.id == "traits")
                    or (isinstance(tgt, ast.Attribute) and tgt.attr == "traits")
                ):
                    return
        self._emit(
            node, "RV303",
            f"SchedulerPolicy subclass {node.name} never defines `traits`",
        )

    # -- RV305 mutable dataclass defaults -----------------------------
    def _check_mutable_defaults(self, node: ast.ClassDef) -> None:
        if not any(
            (isinstance(dec, ast.Name) and dec.id == "dataclass")
            or (
                isinstance(dec, ast.Call)
                and isinstance(dec.func, ast.Name)
                and dec.func.id == "dataclass"
            )
            for dec in node.decorator_list
        ):
            return
        for stmt in node.body:
            value = None
            fname = "?"
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                value, fname = stmt.value, stmt.target.id
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                value, fname = stmt.value, stmt.targets[0].id
            if value is not None and _is_mutable_default(value):
                self._emit(
                    stmt, "RV305",
                    f"dataclass field `{fname}` defaults to a shared "
                    "mutable; use field(default_factory=...)",
                )

    # -- RV306 unordered set iteration --------------------------------
    def _check_iteration_order(self, itr: ast.expr) -> None:
        if isinstance(itr, (ast.Set, ast.SetComp)):
            self._emit(
                itr, "RV306",
                "iteration over a set literal is hash-ordered; wrap in "
                "sorted(...) before deriving schedule decisions",
            )
            return
        if (
            isinstance(itr, ast.Call)
            and isinstance(itr.func, ast.Name)
            and itr.func.id in ("set", "frozenset")
        ):
            self._emit(
                itr, "RV306",
                f"iteration over {itr.func.id}(...) is hash-ordered; "
                "wrap in sorted(...)",
            )
            return
        if isinstance(itr, ast.Subscript):
            base = _terminal_name(itr.value)
            if base is not None and base in self.set_container_names:
                self._emit(
                    itr, "RV306",
                    f"iteration over set-valued element `{base}[...]` is "
                    "hash-ordered; wrap in sorted(...) before deriving "
                    "schedule decisions",
                )
            return
        name = _terminal_name(itr)
        if name is not None and name in self.set_names:
            self._emit(
                itr, "RV306",
                f"iteration over set `{name}` is hash-ordered; wrap in "
                "sorted(...) before deriving schedule decisions",
            )

    def _check_set_pop(self, node: ast.Call) -> None:
        f = node.func
        if not (
            isinstance(f, ast.Attribute)
            and f.attr == "pop"
            and not node.args
            and not node.keywords
        ):
            return
        recv = f.value
        is_set = False
        label = "set"
        if isinstance(recv, ast.Subscript):
            base = _terminal_name(recv.value)
            if base is not None and base in self.set_container_names:
                is_set, label = True, f"{base}[...]"
        elif (
            isinstance(recv, ast.Call)
            and isinstance(recv.func, ast.Name)
            and recv.func.id in ("set", "frozenset")
        ):
            is_set, label = True, f"{recv.func.id}(...)"
        else:
            name = _terminal_name(recv)
            if name is not None and name in self.set_names:
                is_set, label = True, name
        if is_set:
            self._emit(
                node, "RV306",
                f"`{label}.pop()` removes a hash-ordered arbitrary "
                "element; pick deterministically (min(...) then "
                ".discard(...))",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration_order(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iteration_order(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for gen in node.generators:
            self._check_iteration_order(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- RV304 numpy truthiness ---------------------------------------
    def _check_bool_context(self, expr: ast.expr) -> None:
        if not isinstance(expr, ast.Call):
            return
        func = expr.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("np", "numpy")
            and func.attr in _ARRAY_RETURNING
        ):
            self._emit(
                expr, "RV304",
                f"truth value of np.{func.attr}(...) is ambiguous for "
                "arrays; test `.size` explicitly",
            )

    def visit_If(self, node: ast.If) -> None:
        self._check_bool_context(node.test)
        self.generic_visit(node)

    def visit_While(self, node: ast.While) -> None:
        self._check_bool_context(node.test)
        self.generic_visit(node)

    def visit_Assert(self, node: ast.Assert) -> None:
        self._check_bool_context(node.test)
        self.generic_visit(node)

    def visit_IfExp(self, node: ast.IfExp) -> None:
        self._check_bool_context(node.test)
        self.generic_visit(node)

    def visit_BoolOp(self, node: ast.BoolOp) -> None:
        for value in node.values:
            self._check_bool_context(value)
        self.generic_visit(node)

    def visit_UnaryOp(self, node: ast.UnaryOp) -> None:
        if isinstance(node.op, ast.Not):
            self._check_bool_context(node.operand)
        self.generic_visit(node)


def lint_sources(sources: dict[str, str]) -> list[LintFinding]:
    """Lint a ``{path: source}`` mapping; returns sorted findings."""
    trees: dict[str, ast.Module] = {}
    for path, src in sources.items():
        try:
            trees[path] = ast.parse(src, filename=path)
        except SyntaxError as exc:
            return [LintFinding(path, exc.lineno or 0, exc.offset or 0,
                                "RV300", f"syntax error: {exc.msg}")]
    frozen = _frozen_dataclasses(trees.values())
    findings: list[LintFinding] = []
    for path, tree in trees.items():
        linter = _FileLinter(path, sources[path], frozen,
                             _set_typed_names(tree),
                             _set_container_names(tree))
        linter.visit(tree)
        findings.extend(linter.findings)
    findings.sort(key=lambda f: (f.path, f.line, f.col))
    return findings


def lint_paths(paths: Sequence[str | Path]) -> list[LintFinding]:
    """Lint every ``*.py`` file under the given files/directories."""
    files: list[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    sources = {str(f): f.read_text() for f in files}
    return lint_sources(sources)


def lint_report(paths: Sequence[str | Path]) -> Report:
    """Run the linter and wrap findings in a :class:`Report`."""
    findings = lint_paths(paths)
    report = Report("lint")
    report.stats["files"] = len({f.path for f in findings}) if findings else 0
    report.stats["findings"] = len(findings)
    for f in findings:
        report.add(f.code, f.message, location=f.location)
    return report
