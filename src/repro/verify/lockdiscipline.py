"""Lock-discipline linter (RV4xx): static concurrency rules for the
threaded runtime (AST-based, stdlib only).

The C7xx pass (:mod:`repro.verify.concurrency`) convicts races from
recorded traces; this pass convicts the *source shapes* that breed
them, over the modules that actually run concurrent code —
``repro.runtime`` and ``repro.kernels.accumulate`` by default.  Four
rules, suppressible like the RV3xx project lint with ``# noqa: RV4xx``
on the offending line:

* **RV401 unlocked shared write** — inside a class that owns a
  ``threading.Lock``/``RLock``/``Condition`` attribute, an augmented
  assignment (``+=`` &c., the read-modify-write shape) on a ``self``
  attribute outside any ``with self.<lock>:`` block and outside the
  single-threaded setup methods (``__init__``/``setup``/``bind``).
  Deliberate best-effort counters carry a justifying comment and a
  ``noqa``;
* **RV402 wait without predicate loop** — a ``Condition.wait()`` not
  lexically inside a ``while`` loop: condition waits can wake
  spuriously, so the predicate must be re-checked in a loop
  (``threading.Event.wait`` is exempt — it latches);
* **RV403 inconsistent lock order** — lexically nested ``with
  self.<lockA>: ... with self.<lockB>:`` acquisitions whose order
  graph, accumulated across the linted tree, contains a cycle: the
  static shadow of the C706 runtime check;
* **RV404 sleep as synchronization** — any ``time.sleep(...)`` in the
  scoped modules: the runtime synchronizes with events and joins;
  sleeping for another thread's progress is a latent race and a
  wasted core;
* **RV405 unguarded read of lock-guarded state** — a ``return``
  statement (outside any ``with self.<lock>:`` block and outside the
  setup methods) that reads a *lock-guarded* attribute: one the class
  both touches inside a lock block and mutates (augmented/subscript
  assignment or a mutating container call such as ``append``/
  ``heappush``).  The classic shape is an emptiness probe like
  ``return bool(self._heap)`` racing a multi-step heap sift on another
  thread.  Deliberately lock-free probes (atomic deque length reads
  backed by a re-polling protocol) carry a memory-model justification
  and a ``noqa``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Optional, Sequence

from repro.verify.lint import LintFinding, _NOQA_RE
from repro.verify.report import Report

__all__ = [
    "lockdiscipline_sources",
    "lockdiscipline_paths",
    "lockdiscipline_report",
    "DEFAULT_SCOPE",
]

#: Methods that run before (or after) the worker threads exist.
_SETUP_METHODS = {"__init__", "setup", "bind", "__post_init__"}

#: threading constructors whose product is a mutual-exclusion object.
_LOCK_CTORS = {"Lock", "RLock", "Condition", "Semaphore",
               "BoundedSemaphore"}


def _lock_ctor_in(expr: ast.expr) -> bool:
    """Does this expression construct a threading lock (possibly inside
    a list/comprehension, the per-panel lock-table idiom)?"""
    for node in ast.walk(expr):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _LOCK_CTORS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "threading"
        ):
            return True
    return False


def _self_attr(node: ast.expr) -> Optional[str]:
    """``self.X`` or ``self.X[...]`` -> ``"X"``; else ``None``."""
    if isinstance(node, ast.Subscript):
        return _self_attr(node.value)
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _condition_attrs(cls: ast.ClassDef) -> set[str]:
    """Attributes assigned ``threading.Condition(...)`` in ``cls``."""
    out: set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and isinstance(
            node.value, ast.Call
        ):
            f = node.value.func
            if (
                isinstance(f, ast.Attribute)
                and f.attr == "Condition"
                and isinstance(f.value, ast.Name)
                and f.value.id == "threading"
            ):
                for tgt in node.targets:
                    attr = _self_attr(tgt)
                    if attr is not None:
                        out.add(attr)
    return out


def _lock_attrs(cls: ast.ClassDef) -> set[str]:
    """Attributes of ``cls`` holding a lock or a lock table."""
    out: set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and _lock_ctor_in(node.value):
            for tgt in node.targets:
                attr = _self_attr(tgt)
                if attr is not None:
                    out.add(attr)
    return out


#: Container methods that mutate their receiver in place.
_MUTATOR_METHODS = {
    "append", "appendleft", "pop", "popleft", "extend", "extendleft",
    "add", "remove", "discard", "clear", "update", "setdefault",
    "insert",
}

#: ``heapq`` functions that mutate their first argument.
_HEAPQ_MUTATORS = {"heappush", "heappop", "heapify", "heappushpop",
                   "heapreplace"}


def _witnessed_attrs(lock_attrs: set[str]):
    """Probe factory: ``self`` attributes touched inside a ``with
    self.<lock>:`` body of the probed class."""

    def probe(cls: ast.ClassDef) -> set[str]:
        out: set[str] = set()
        for node in ast.walk(cls):
            if not isinstance(node, ast.With):
                continue
            if not any(
                _self_attr(item.context_expr) in lock_attrs
                for item in node.items
            ):
                continue
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Attribute):
                        attr = _self_attr(sub)
                        if attr is not None:
                            out.add(attr)
        return out - lock_attrs

    return probe


def _mutated_attrs(cls: ast.ClassDef) -> set[str]:
    """``self`` attributes the class mutates anywhere (shared state):
    augmented or subscript assignment, in-place container calls, or
    ``heapq`` operations.  Plain ``self.X = ...`` rebinds are treated
    as initialisation, not mutation."""
    out: set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.AugAssign):
            attr = _self_attr(node.target)
            if attr is not None:
                out.add(attr)
        elif isinstance(node, (ast.Assign, ast.Delete)):
            for tgt in node.targets:
                if isinstance(tgt, ast.Subscript):
                    attr = _self_attr(tgt)
                    if attr is not None:
                        out.add(attr)
        elif isinstance(node, ast.Call):
            f = node.func
            if isinstance(f, ast.Attribute) \
                    and f.attr in _MUTATOR_METHODS:
                attr = _self_attr(f.value)
                if attr is not None:
                    out.add(attr)
            elif (
                isinstance(f, ast.Attribute)
                and f.attr in _HEAPQ_MUTATORS
                and isinstance(f.value, ast.Name)
                and f.value.id == "heapq"
                and node.args
            ):
                attr = _self_attr(node.args[0])
                if attr is not None:
                    out.add(attr)
    return out


class _ClassLinter:
    """Lint one class's methods against the RV401/402/403/405 rules."""

    def __init__(self, path: str, lines: list[str], cls: ast.ClassDef,
                 lock_attrs: set[str], cond_attrs: set[str],
                 findings: list[LintFinding],
                 lock_order: dict[str, set[str]],
                 guarded_attrs: Optional[set[str]] = None) -> None:
        self.path = path
        self.lines = lines
        self.cls = cls
        self.lock_attrs = lock_attrs
        self.cond_attrs = cond_attrs
        self.findings = findings
        self.lock_order = lock_order
        self.guarded_attrs = guarded_attrs or set()

    def _suppressed(self, line: int, code: str) -> bool:
        if not 1 <= line <= len(self.lines):
            return False
        m = _NOQA_RE.search(self.lines[line - 1])
        if not m:
            return False
        codes = m.group("codes")
        if codes is None:
            return True
        return code in {c.strip().upper() for c in codes.split(",")}

    def _emit(self, node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if self._suppressed(line, code):
            return
        self.findings.append(
            LintFinding(self.path, line,
                        getattr(node, "col_offset", 0), code, message)
        )

    # ------------------------------------------------------------------
    def lint(self) -> None:
        for stmt in self.cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._lint_method(stmt)

    def _with_locks(self, node: ast.With) -> list[str]:
        """Lock attributes this ``with`` acquires (``self.X`` items)."""
        out = []
        for item in node.items:
            attr = _self_attr(item.context_expr)
            if attr is not None and attr in self.lock_attrs:
                out.append(attr)
        return out

    def _lint_method(self, fn) -> None:
        in_setup = fn.name in _SETUP_METHODS
        self._walk(fn.body, held=[], in_setup=in_setup, in_while=False,
                   fn_name=fn.name)

    def _walk(self, body, held: list[str], in_setup: bool,
              in_while: bool, fn_name: str) -> None:
        for stmt in body:
            if isinstance(stmt, ast.With):
                acquired = self._with_locks(stmt)
                for new in acquired:
                    for outer in held:
                        if outer != new:
                            self._note_order(stmt, outer, new)
                self._walk(stmt.body, held + acquired, in_setup,
                           in_while, fn_name)
                # Expressions in the with header still need the scans.
                for item in stmt.items:
                    self._scan_expr(item.context_expr, in_while)
                continue
            if isinstance(stmt, ast.While):
                self._scan_expr(stmt.test, in_while=True)
                self._walk(stmt.body + stmt.orelse, held, in_setup,
                           in_while=True, fn_name=fn_name)
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Nested defs (callbacks) run on unknown threads: lint
                # them as non-setup code holding nothing.
                self._walk(stmt.body, held=[], in_setup=False,
                           in_while=False, fn_name=stmt.name)
                continue
            if isinstance(stmt, ast.AugAssign) and not in_setup:
                self._check_aug(stmt, held)
            if (
                isinstance(stmt, ast.Return)
                and stmt.value is not None
                and not in_setup
                and not held
            ):
                self._check_return(stmt)
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, (ast.stmt, ast.expr)):
                    if isinstance(child, ast.expr):
                        self._scan_expr(child, in_while)
            # Recurse into compound statements (if/for/try bodies).
            for field in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, field, None)
                if sub and not isinstance(stmt, (ast.With, ast.While)):
                    self._walk(sub, held, in_setup, in_while, fn_name)
            handlers = getattr(stmt, "handlers", None)
            if handlers:
                for h in handlers:
                    self._walk(h.body, held, in_setup, in_while, fn_name)

    def _note_order(self, node: ast.AST, outer: str, new: str) -> None:
        key = f"{self.cls.name}.{outer}"
        val = f"{self.cls.name}.{new}"
        self.lock_order.setdefault(key, set()).add(val)
        # Cycle check is global (lockdiscipline_sources) once all files
        # contributed; here we only record the edge.
        _ = node

    def _check_aug(self, stmt: ast.AugAssign, held: list[str]) -> None:
        attr = _self_attr(stmt.target)
        if attr is None or attr in self.lock_attrs:
            return
        if held:
            return
        self._emit(
            stmt, "RV401",
            f"read-modify-write of shared attribute self.{attr} in "
            f"lock-owning class {self.cls.name} outside any "
            "`with self.<lock>:` block",
        )

    def _check_return(self, stmt: ast.Return) -> None:
        assert stmt.value is not None
        for node in ast.walk(stmt.value):
            if not isinstance(node, ast.Attribute):
                continue
            attr = _self_attr(node)
            if attr is not None and attr in self.guarded_attrs:
                self._emit(
                    stmt, "RV405",
                    f"return reads lock-guarded attribute self.{attr} "
                    f"of {self.cls.name} without holding the lock that "
                    "elsewhere guards its mutation (torn read against "
                    "a concurrent multi-step update)",
                )
                return

    def _scan_expr(self, expr: ast.expr, in_while: bool) -> None:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            f = node.func
            if (
                isinstance(f, ast.Attribute)
                and f.attr == "wait"
                and not in_while
            ):
                base_attr = _self_attr(f.value)
                if base_attr is not None and base_attr in self.cond_attrs:
                    self._emit(
                        node, "RV402",
                        f"self.{base_attr}.wait() outside a while "
                        "loop: condition waits wake spuriously; "
                        "re-check the predicate in a loop",
                    )


def _scan_sleeps(path: str, source: str, tree: ast.Module,
                 findings: list[LintFinding]) -> None:
    lines = source.splitlines()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "sleep"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "time"
        ):
            line = getattr(node, "lineno", 0)
            if 1 <= line <= len(lines):
                m = _NOQA_RE.search(lines[line - 1])
                if m and (m.group("codes") is None or "RV404" in {
                    c.strip().upper()
                    for c in (m.group("codes") or "").split(",")
                }):
                    continue
            findings.append(LintFinding(
                path, line, getattr(node, "col_offset", 0), "RV404",
                "time.sleep() in concurrent runtime code: synchronize "
                "with events/joins, never with naps",
            ))


def lockdiscipline_sources(
    sources: dict[str, str],
) -> list[LintFinding]:
    """Lint a ``{path: source}`` mapping; returns sorted findings."""
    findings: list[LintFinding] = []
    lock_order: dict[str, set[str]] = {}
    trees: dict[str, ast.Module] = {}
    for path, src in sources.items():
        try:
            trees[path] = ast.parse(src, filename=path)
        except SyntaxError as exc:
            return [LintFinding(path, exc.lineno or 0, exc.offset or 0,
                                "RV400", f"syntax error: {exc.msg}")]
    # Resolve lock ownership through base classes named in the linted
    # set: a subclass of a lock-owning scheduler shares its discipline.
    by_name: dict[str, ast.ClassDef] = {}
    for tree in trees.values():
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                by_name.setdefault(node.name, node)

    def _inherited(cls: ast.ClassDef, probe) -> set[str]:
        out: set[str] = set(probe(cls))
        seen = {cls.name}
        stack = [b.id for b in cls.bases if isinstance(b, ast.Name)]
        while stack:
            name = stack.pop()
            if name in seen or name not in by_name:
                continue
            seen.add(name)
            base = by_name[name]
            out |= probe(base)
            stack.extend(b.id for b in base.bases
                         if isinstance(b, ast.Name))
        return out

    order_sites: dict[str, tuple[str, int]] = {}
    for path, tree in trees.items():
        src_lines = sources[path].splitlines()
        _scan_sleeps(path, sources[path], tree, findings)
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            locks = _inherited(node, _lock_attrs)
            conds = _inherited(node, _condition_attrs)
            if not locks and not conds:
                continue
            # RV405 guarded set: attributes the class hierarchy both
            # touches under a lock AND mutates in place somewhere.
            witnessed = _inherited(node, _witnessed_attrs(locks | conds))
            mutated = _inherited(node, _mutated_attrs)
            before = {k: set(v) for k, v in lock_order.items()}
            _ClassLinter(path, src_lines, node, locks | conds, conds,
                         findings, lock_order,
                         guarded_attrs=witnessed & mutated).lint()
            for k, v in lock_order.items():
                for dst in v - before.get(k, set()):
                    order_sites.setdefault(
                        f"{k}->{dst}", (path, node.lineno)
                    )
    # RV403: cycles in the accumulated nested-acquisition graph.
    state: dict[str, int] = {}
    cycle: list[str] = []

    def _dfs(n: str, pathstack: list[str]) -> bool:
        state[n] = 1
        pathstack.append(n)
        for nxt in sorted(lock_order.get(n, ())):
            if state.get(nxt, 0) == 1:
                cycle.extend(pathstack[pathstack.index(nxt):] + [nxt])
                return True
            if state.get(nxt, 0) == 0 and _dfs(nxt, pathstack):
                return True
        pathstack.pop()
        state[n] = 2
        return False

    for n in sorted(lock_order):
        if state.get(n, 0) == 0 and _dfs(n, []):
            edge = f"{cycle[0]}->{cycle[1]}" if len(cycle) > 1 else ""
            where = order_sites.get(edge, (next(iter(sources)), 0))
            findings.append(LintFinding(
                where[0], where[1], 0, "RV403",
                "inconsistent lock acquisition order: "
                + " -> ".join(cycle),
            ))
            break
    findings.sort(key=lambda f: (f.path, f.line, f.col))
    return findings


#: Modules the lock-discipline lint covers by default: everything that
#: runs (or is mutated by) worker threads.
DEFAULT_SCOPE = ("src/repro/runtime", "src/repro/kernels/accumulate.py")


def _default_paths() -> list[Path]:
    """Resolve :data:`DEFAULT_SCOPE` relative to the installed package
    (works from any CWD, including an installed tree)."""
    import repro

    pkg = Path(repro.__file__).resolve().parent
    return [pkg / "runtime", pkg / "kernels" / "accumulate.py"]


def lockdiscipline_paths(
    paths: Optional[Sequence[str | Path]] = None,
) -> list[LintFinding]:
    """Lint ``*.py`` files under the given paths (default: the
    threaded-runtime scope)."""
    targets = ([Path(p) for p in paths] if paths is not None
               else _default_paths())
    files: list[Path] = []
    for p in targets:
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.exists():
            files.append(p)
    sources = {str(f): f.read_text() for f in files}
    return lockdiscipline_sources(sources)


def lockdiscipline_report(
    paths: Optional[Sequence[str | Path]] = None,
) -> Report:
    """Run the RV4xx lint and wrap findings in a :class:`Report`."""
    findings = lockdiscipline_paths(paths)
    report = Report("lockdiscipline")
    report.stats["findings"] = float(len(findings))
    for f in findings:
        report.add(f.code, f.message, location=f.location)
    return report
