"""Breadth-first machinery: level structures, pseudo-peripheral vertices,
connected components.

BFS is frontier-vectorised: each level expansion is a handful of NumPy
gather/unique operations over the whole frontier rather than a per-vertex
Python loop, following the project's vectorise-the-inner-loop idiom.
"""

from __future__ import annotations

import numpy as np

from repro.graph.adjacency import Graph

__all__ = ["bfs_levels", "pseudo_peripheral_vertex", "connected_components"]


def _expand(graph: Graph, frontier: np.ndarray) -> np.ndarray:
    """All neighbours of the frontier, with duplicates."""
    starts = graph.xadj[frontier]
    lens = graph.xadj[frontier + 1] - starts
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offs = np.concatenate(([0], np.cumsum(lens)[:-1]))
    gather = np.repeat(starts - offs, lens) + np.arange(total)
    return graph.adjncy[gather]


def bfs_levels(graph: Graph, start: int | np.ndarray) -> np.ndarray:
    """BFS level of every vertex from ``start`` (vertex or set of vertices).

    Unreachable vertices get level ``-1``.
    """
    level = np.full(graph.n, -1, dtype=np.int64)
    frontier = np.atleast_1d(np.asarray(start, dtype=np.int64))
    level[frontier] = 0
    depth = 0
    while frontier.size:
        nbrs = _expand(graph, frontier)
        nbrs = nbrs[level[nbrs] < 0]
        if nbrs.size == 0:
            break
        frontier = np.unique(nbrs)
        depth += 1
        level[frontier] = depth
    return level


def pseudo_peripheral_vertex(graph: Graph, start: int = 0, *,
                             max_iter: int = 8) -> tuple[int, np.ndarray]:
    """Find a pseudo-peripheral vertex by repeated BFS (George–Liu).

    Returns ``(vertex, levels_from_vertex)``.  Each sweep restarts from a
    minimum-degree vertex of the deepest level until eccentricity stops
    growing.
    """
    v = int(start)
    levels = bfs_levels(graph, v)
    ecc = int(levels.max())
    for _ in range(max_iter):
        deepest = np.flatnonzero(levels == ecc)
        # Minimum-degree vertex of the last level gives thinner levels.
        deg = graph.xadj[deepest + 1] - graph.xadj[deepest]
        cand = int(deepest[np.argmin(deg)])
        new_levels = bfs_levels(graph, cand)
        new_ecc = int(new_levels.max())
        if new_ecc <= ecc:
            return cand, new_levels
        v, levels, ecc = cand, new_levels, new_ecc
    return v, levels


def connected_components(graph: Graph) -> np.ndarray:
    """Component id of every vertex (ids are dense, ordered by discovery)."""
    comp = np.full(graph.n, -1, dtype=np.int64)
    cid = 0
    remaining = np.arange(graph.n, dtype=np.int64)
    while remaining.size:
        seed = int(remaining[0])
        levels = bfs_levels(graph, seed)
        # Restrict flood to still-unassigned vertices: levels computed on
        # the full graph may touch other components only via paths, which
        # cannot happen — levels >= 0 is exactly the component of seed.
        members = np.flatnonzero((levels >= 0) & (comp < 0))
        comp[members] = cid
        cid += 1
        remaining = np.flatnonzero(comp < 0)
    return comp
