"""Multilevel 2-way edge partitioning.

Classic V-cycle: coarsen with heavy-edge matching until the graph is
small, split the coarsest graph by greedy BFS region growing, then project
back, applying a bounded boundary-refinement (simplified
Fiduccia–Mattheyses: single-vertex moves by best gain with balance
constraint) at each level.

The nested-dissection driver can derive a vertex separator from the edge
cut (see :func:`repro.graph.separator.separator_from_edge_cut`); the
default ND path uses BFS level-set separators directly, and this
partitioner serves the quality-comparison ablation and tests.
"""

from __future__ import annotations

import numpy as np

from repro.graph.adjacency import Graph
from repro.graph.bfs import pseudo_peripheral_vertex, _expand
from repro.graph.coarsen import heavy_edge_matching, coarsen_graph

__all__ = ["multilevel_bisection", "edge_cut", "grow_bisection", "refine_bisection"]


def edge_cut(graph: Graph, part: np.ndarray) -> int:
    """Total weight of edges crossing the partition."""
    src = np.repeat(np.arange(graph.n, dtype=np.int64), np.diff(graph.xadj))
    cut = part[src] != part[graph.adjncy]
    if graph.ewgt is not None:
        return int(graph.ewgt[cut].sum()) // 2
    return int(cut.sum()) // 2


def grow_bisection(graph: Graph, seed: int = 0) -> np.ndarray:
    """Initial 0/1 partition by BFS region growing to half the weight."""
    start, levels = pseudo_peripheral_vertex(graph, seed % max(1, graph.n))
    order = np.argsort(levels, kind="stable")
    # Unreached vertices (level -1) sort first; push them to the end.
    reached = levels[order] >= 0
    order = np.concatenate([order[reached], order[~reached]])
    cum = np.cumsum(graph.vwgt[order])
    half = graph.total_weight / 2.0
    k = int(np.searchsorted(cum, half)) + 1
    part = np.ones(graph.n, dtype=np.int8)
    part[order[:k]] = 0
    return part


def refine_bisection(
    graph: Graph,
    part: np.ndarray,
    *,
    max_passes: int = 4,
    balance: float = 1.10,
) -> np.ndarray:
    """Greedy boundary refinement (simplified FM).

    Each pass scans boundary vertices in descending gain order and moves a
    vertex when the move reduces the cut and keeps the heavier side below
    ``balance`` × half the total weight.  Gains are recomputed lazily per
    pass (no bucket structure — adequate at the coarse levels where most
    of the improvement happens).
    """
    part = part.copy()
    n = graph.n
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.xadj))
    ew = graph.ewgt if graph.ewgt is not None else np.ones(src.size, dtype=np.int64)
    limit = balance * graph.total_weight / 2.0

    for _ in range(max_passes):
        same = part[src] == part[graph.adjncy]
        internal = np.zeros(n, dtype=np.int64)
        external = np.zeros(n, dtype=np.int64)
        np.add.at(internal, src[same], ew[same])
        np.add.at(external, src[~same], ew[~same])
        gain = external - internal
        boundary = np.flatnonzero(external > 0)
        if boundary.size == 0:
            break
        cand = boundary[np.argsort(-gain[boundary], kind="stable")]
        w0 = float(graph.vwgt[part == 0].sum())
        w1 = graph.total_weight - w0
        improved = False
        for v in cand:
            if gain[v] <= 0:
                break
            wv = float(graph.vwgt[v])
            if part[v] == 0:
                if w1 + wv > limit:
                    continue
                w0 -= wv
                w1 += wv
            else:
                if w0 + wv > limit:
                    continue
                w1 -= wv
                w0 += wv
            part[v] ^= 1
            improved = True
            # Update neighbour gains locally.
            nbrs = graph.neighbors(v)
            wns = (graph.ewgt[graph.xadj[v]: graph.xadj[v + 1]]
                   if graph.ewgt is not None else np.ones(nbrs.size, dtype=np.int64))
            for u, wu in zip(nbrs, wns):
                if part[u] == part[v]:
                    gain[u] -= 2 * wu
                else:
                    gain[u] += 2 * wu
            gain[v] = -gain[v]
        if not improved:
            break
    return part


def multilevel_bisection(
    graph: Graph,
    *,
    coarsen_to: int = 64,
    seed: int = 0,
    max_levels: int = 24,
) -> np.ndarray:
    """2-way partition of ``graph``; returns a 0/1 array of length ``n``."""
    if graph.n <= 2:
        part = np.zeros(graph.n, dtype=np.int8)
        if graph.n == 2:
            part[1] = 1
        return part

    hierarchy: list[tuple[Graph, np.ndarray]] = []
    g = graph
    for _ in range(max_levels):
        if g.n <= coarsen_to:
            break
        match = heavy_edge_matching(g, seed=seed)
        coarse, cmap = coarsen_graph(g, match)
        if coarse.n >= g.n * 0.95:  # matching stalled (e.g. star graphs)
            break
        hierarchy.append((g, cmap))
        g = coarse

    part = grow_bisection(g, seed=seed)
    part = refine_bisection(g, part)
    for fine, cmap in reversed(hierarchy):
        part = part[cmap]
        part = refine_bisection(fine, part)
    return part
