"""Vertex separators.

The nested-dissection driver asks this module for a small, balanced vertex
separator of a (sub)graph.  Two mechanisms are provided:

* :func:`level_set_separator` — BFS level-set separator from a
  pseudo-peripheral vertex, choosing the level that minimises a
  size/imbalance objective.  Cheap, fully vectorised, robust.
* :func:`thin_separator` — a refinement pass that moves separator vertices
  adjacent to only one side into that side, shrinking the separator
  (the cheap half of an FM pass, sufficient to clean up level sets).
"""

from __future__ import annotations

import numpy as np

from repro.graph.adjacency import Graph
from repro.graph.bfs import pseudo_peripheral_vertex, _expand

__all__ = ["level_set_separator", "thin_separator", "separator_from_edge_cut"]


def level_set_separator(
    graph: Graph,
    *,
    max_imbalance: float = 3.0,
    seed_vertex: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split ``graph`` into ``(sep, part_a, part_b)`` using BFS level sets.

    The separator is the BFS level minimising
    ``|level| * (1 + imbalance)`` where imbalance is the weighted ratio of
    the two sides; levels whose imbalance exceeds ``max_imbalance`` are
    skipped unless nothing else qualifies.  All three returned arrays are
    vertex-id arrays partitioning ``range(n)``.
    """
    n = graph.n
    if n == 1:
        return (np.empty(0, np.int64), np.arange(1, dtype=np.int64),
                np.empty(0, np.int64))
    _, levels = pseudo_peripheral_vertex(graph, seed_vertex)
    depth = int(levels.max())
    if depth <= 0:
        return _neighborhood_separator(graph, seed_vertex)

    w = graph.vwgt.astype(np.float64)
    total = w.sum()
    # weight of each level, cumulative weight strictly below each level
    level_w = np.zeros(depth + 1)
    np.add.at(level_w, levels, w)
    below = np.concatenate(([0.0], np.cumsum(level_w)[:-1]))

    best = None
    for lev in range(1, depth):
        wa = below[lev]
        ws = level_w[lev]
        wb = total - wa - ws
        if wa == 0 or wb == 0:
            continue
        imbalance = max(wa, wb) / max(1.0, min(wa, wb))
        score = ws * (1.0 + imbalance)
        feasible = imbalance <= max_imbalance
        key = (not feasible, score)
        if best is None or key < best[0]:
            best = (key, lev)
    if best is None:
        # Degenerate level structure (e.g. two levels): fall back to the
        # always-valid one-vertex construction.
        return _neighborhood_separator(graph, seed_vertex)

    lev = best[1]
    sep = np.flatnonzero(levels == lev).astype(np.int64)
    part_a = np.flatnonzero(levels < lev).astype(np.int64)
    part_b = np.flatnonzero(levels > lev).astype(np.int64)
    return thin_separator(graph, sep, part_a, part_b)


def _neighborhood_separator(
    graph: Graph, v: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Trivial but always-valid separator: ``({v}, N(v), rest)``.

    Used when no level structure exists (complete or two-level graphs).
    The caller treats an empty part as "separation failed" and orders the
    region directly.
    """
    v = int(v) % max(graph.n, 1)
    side = np.full(graph.n, 2, dtype=np.int8)
    side[graph.neighbors(v)] = 0
    side[v] = 1
    return (
        np.flatnonzero(side == 0).astype(np.int64),
        np.flatnonzero(side == 1).astype(np.int64),
        np.flatnonzero(side == 2).astype(np.int64),
    )


def thin_separator(
    graph: Graph,
    sep: np.ndarray,
    part_a: np.ndarray,
    part_b: np.ndarray,
    *,
    max_passes: int = 4,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shrink a separator by releasing vertices touching only one side.

    A separator vertex with no neighbour in part B may move into part A
    (and symmetrically) without reconnecting A and B; isolated separator
    vertices go to the lighter side.  Iterates until a fixed point or
    ``max_passes``.
    """
    side = np.zeros(graph.n, dtype=np.int8)  # 0 = sep, 1 = A, 2 = B
    side[part_a] = 1
    side[part_b] = 2
    for _ in range(max_passes):
        sep_ids = np.flatnonzero(side == 0)
        if sep_ids.size == 0:
            break
        moved = False
        # For each separator vertex count neighbours on each side.
        starts = graph.xadj[sep_ids]
        lens = graph.xadj[sep_ids + 1] - starts
        nbrs = _expand(graph, sep_ids)
        owner = np.repeat(np.arange(sep_ids.size), lens)
        nbr_side = side[nbrs]
        has_a = np.zeros(sep_ids.size, dtype=bool)
        has_b = np.zeros(sep_ids.size, dtype=bool)
        np.logical_or.at(has_a, owner, nbr_side == 1)
        np.logical_or.at(has_b, owner, nbr_side == 2)
        only_a = has_a & ~has_b
        only_b = has_b & ~has_a
        isolated = ~has_a & ~has_b
        # Isolated separator vertices go to the lighter side.
        wa = graph.vwgt[side == 1].sum()
        wb = graph.vwgt[side == 2].sum()
        if np.any(only_a):
            side[sep_ids[only_a]] = 1
            moved = True
        if np.any(only_b):
            side[sep_ids[only_b]] = 2
            moved = True
        if np.any(isolated):
            side[sep_ids[isolated]] = 1 if wa <= wb else 2
            moved = True
        if not moved:
            break
    return (
        np.flatnonzero(side == 0).astype(np.int64),
        np.flatnonzero(side == 1).astype(np.int64),
        np.flatnonzero(side == 2).astype(np.int64),
    )


def separator_from_edge_cut(
    graph: Graph, part: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Derive a vertex separator from a 2-way edge partition.

    ``part`` is a 0/1 array.  Boundary vertices of the *smaller* boundary
    side form the separator (a cheap one-sided vertex cover of the cut).
    """
    src = np.repeat(np.arange(graph.n, dtype=np.int64), np.diff(graph.xadj))
    cut = part[src] != part[graph.adjncy]
    b0 = np.unique(src[cut & (part[src] == 0)])
    b1 = np.unique(src[cut & (part[src] == 1)])
    sep = b0 if b0.size <= b1.size else b1
    in_sep = np.zeros(graph.n, dtype=bool)
    in_sep[sep] = True
    part_a = np.flatnonzero((part == 0) & ~in_sep).astype(np.int64)
    part_b = np.flatnonzero((part == 1) & ~in_sep).astype(np.int64)
    return thin_separator(graph, sep.astype(np.int64), part_a, part_b)
