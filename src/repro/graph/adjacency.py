"""Undirected adjacency-list graph backed by CSR arrays."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.sparse.csc import SparseMatrixCSC

__all__ = ["Graph"]


@dataclass
class Graph:
    """Undirected graph in CSR form.

    ``xadj`` has length ``n + 1``; the neighbours of vertex ``v`` are
    ``adjncy[xadj[v]:xadj[v+1]]``.  Self-loops are disallowed; every edge
    appears in both endpoints' lists.  ``vwgt`` carries vertex weights
    (defaults to 1), used by coarsened graphs so balance is computed on
    original-vertex counts.
    """

    n: int
    xadj: np.ndarray
    adjncy: np.ndarray
    vwgt: Optional[np.ndarray] = None
    ewgt: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.vwgt is None:
            self.vwgt = np.ones(self.n, dtype=np.int64)

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return int(self.adjncy.size) // 2

    @property
    def total_weight(self) -> int:
        return int(self.vwgt.sum())

    def neighbors(self, v: int) -> np.ndarray:
        return self.adjncy[self.xadj[v] : self.xadj[v + 1]]

    def degrees(self) -> np.ndarray:
        return np.diff(self.xadj)

    # ------------------------------------------------------------------
    @classmethod
    def from_matrix(cls, mat: SparseMatrixCSC) -> "Graph":
        """Adjacency graph of a square matrix pattern.

        The pattern is symmetrised (the graph of :math:`A + A^T`) and the
        diagonal is dropped, matching what PaStiX hands to Scotch.
        """
        sym = mat.symmetrize_pattern()
        rows, cols, _ = sym.to_coo()
        off = rows != cols
        rows, cols = rows[off], cols[off]
        # The symmetrised pattern already contains both (i,j) and (j,i).
        order = np.lexsort((cols, rows))
        rows, cols = rows[order], cols[order]
        xadj = np.zeros(sym.n_rows + 1, dtype=np.int64)
        np.add.at(xadj, rows + 1, 1)
        np.cumsum(xadj, out=xadj)
        return cls(sym.n_rows, xadj, cols)

    @classmethod
    def from_edges(cls, n: int, u: np.ndarray, v: np.ndarray) -> "Graph":
        """Build from an undirected edge list (each edge listed once)."""
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        if np.any(u == v):
            raise ValueError("self-loops are not allowed")
        rows = np.concatenate([u, v])
        cols = np.concatenate([v, u])
        order = np.lexsort((cols, rows))
        rows, cols = rows[order], cols[order]
        # Drop duplicate edges.
        if rows.size:
            keep = np.ones(rows.size, dtype=bool)
            keep[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
            rows, cols = rows[keep], cols[keep]
        xadj = np.zeros(n + 1, dtype=np.int64)
        np.add.at(xadj, rows + 1, 1)
        np.cumsum(xadj, out=xadj)
        return cls(n, xadj, cols)

    # ------------------------------------------------------------------
    def subgraph(self, vertices: np.ndarray) -> tuple["Graph", np.ndarray]:
        """Induced subgraph on ``vertices``.

        Returns ``(sub, vertices)`` where ``vertices[i]`` is the original
        id of sub-vertex ``i``.  Fully vectorised: edges with an endpoint
        outside the set are masked out via a global relabelling array.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        local = np.full(self.n, -1, dtype=np.int64)
        local[vertices] = np.arange(vertices.size, dtype=np.int64)
        counts = np.diff(self.xadj)
        # Gather all adjacency of the selected vertices.
        starts = self.xadj[vertices]
        lens = counts[vertices]
        total = int(lens.sum())
        # Build gather indices: for each selected vertex, a contiguous run.
        gather = np.repeat(starts - np.concatenate(([0], np.cumsum(lens)[:-1])), lens) + np.arange(total)
        nbrs = self.adjncy[gather]
        src_local = np.repeat(np.arange(vertices.size, dtype=np.int64), lens)
        dst_local = local[nbrs]
        keep = dst_local >= 0
        src_local, dst_local = src_local[keep], dst_local[keep]
        xadj = np.zeros(vertices.size + 1, dtype=np.int64)
        np.add.at(xadj, src_local + 1, 1)
        np.cumsum(xadj, out=xadj)
        # src_local is already sorted (runs in vertex order); dst follows.
        sub = Graph(vertices.size, xadj, dst_local,
                    vwgt=self.vwgt[vertices].copy())
        return sub, vertices

    def check(self) -> None:
        """Validate symmetry and basic invariants (tests only)."""
        if self.xadj[0] != 0 or self.xadj[-1] != self.adjncy.size:
            raise ValueError("xadj endpoints inconsistent")
        if self.adjncy.size:
            if self.adjncy.min() < 0 or self.adjncy.max() >= self.n:
                raise ValueError("neighbour index out of range")
        src = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.xadj))
        if np.any(src == self.adjncy):
            raise ValueError("self-loop present")
        fwd = set(zip(src.tolist(), self.adjncy.tolist()))
        for a, b in fwd:  # noqa: RV306 - order-insensitive validation
            if (b, a) not in fwd:
                raise ValueError(f"edge ({a},{b}) missing its reverse")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(n={self.n}, m={self.n_edges})"
