"""Graph substrate for fill-reducing orderings.

An adjacency-list graph (CSR arrays), breadth-first machinery, vertex
separators, and a multilevel edge-bisection partitioner.  Everything here
is pattern-only: the ordering stage never looks at numerical values.
"""

from repro.graph.adjacency import Graph
from repro.graph.bfs import bfs_levels, pseudo_peripheral_vertex, connected_components
from repro.graph.separator import level_set_separator, thin_separator
from repro.graph.coarsen import heavy_edge_matching, coarsen_graph
from repro.graph.partition import multilevel_bisection, edge_cut

__all__ = [
    "Graph",
    "bfs_levels",
    "pseudo_peripheral_vertex",
    "connected_components",
    "level_set_separator",
    "thin_separator",
    "heavy_edge_matching",
    "coarsen_graph",
    "multilevel_bisection",
    "edge_cut",
]
