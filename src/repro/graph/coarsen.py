"""Graph coarsening via heavy-edge matching (HEM).

Used by the multilevel bisection partitioner: match each vertex with its
heaviest-edge unmatched neighbour, contract matched pairs, and repeat until
the graph is small enough to partition directly.
"""

from __future__ import annotations

import numpy as np

from repro.graph.adjacency import Graph

__all__ = ["heavy_edge_matching", "coarsen_graph"]


def heavy_edge_matching(graph: Graph, seed: int = 0) -> np.ndarray:
    """Compute a matching: ``match[v]`` is v's partner (or v itself).

    Vertices are visited in random order; each unmatched vertex picks its
    heaviest unmatched neighbour (edge weights default to 1, making this
    random matching, which is adequate for separator purposes).
    """
    rng = np.random.default_rng(seed)
    match = np.full(graph.n, -1, dtype=np.int64)
    order = rng.permutation(graph.n)
    xadj, adjncy = graph.xadj, graph.adjncy
    ewgt = graph.ewgt
    for v in order:
        if match[v] >= 0:
            continue
        nbrs = adjncy[xadj[v]: xadj[v + 1]]
        free = nbrs[match[nbrs] < 0]
        if free.size == 0:
            match[v] = v
            continue
        if ewgt is not None:
            w = ewgt[xadj[v]: xadj[v + 1]][match[nbrs] < 0]
            u = int(free[np.argmax(w)])
        else:
            u = int(free[0])
        match[v] = u
        match[u] = v
    return match


def coarsen_graph(graph: Graph, match: np.ndarray) -> tuple[Graph, np.ndarray]:
    """Contract matched pairs into coarse vertices.

    Returns ``(coarse, cmap)`` where ``cmap[v]`` is the coarse vertex of
    fine vertex ``v``.  Coarse vertex weights are the sums of their fine
    constituents; parallel edges are merged with summed weights.
    """
    n = graph.n
    # Assign coarse ids: the lower endpoint of each pair is canonical.
    canonical = np.minimum(np.arange(n, dtype=np.int64), match)
    uniq, cmap = np.unique(canonical, return_inverse=True)
    nc = uniq.size

    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.xadj))
    cu = cmap[src]
    cv = cmap[graph.adjncy]
    keep = cu != cv
    cu, cv = cu[keep], cv[keep]
    ew = (graph.ewgt[keep] if graph.ewgt is not None
          else np.ones(cu.size, dtype=np.int64))
    # Merge parallel edges.
    key = cu * nc + cv
    order = np.argsort(key, kind="stable")
    cu, cv, ew, key = cu[order], cv[order], ew[order], key[order]
    if key.size:
        first = np.ones(key.size, dtype=bool)
        first[1:] = key[1:] != key[:-1]
        seg = np.cumsum(first) - 1
        acc = np.zeros(int(seg[-1]) + 1, dtype=np.int64)
        np.add.at(acc, seg, ew)
        cu, cv, ew = cu[first], cv[first], acc

    xadj = np.zeros(nc + 1, dtype=np.int64)
    np.add.at(xadj, cu + 1, 1)
    np.cumsum(xadj, out=xadj)
    vwgt = np.zeros(nc, dtype=np.int64)
    np.add.at(vwgt, cmap, graph.vwgt)
    coarse = Graph(nc, xadj, cv, vwgt=vwgt, ewgt=ew)
    return coarse, cmap
