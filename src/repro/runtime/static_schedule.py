"""Analysis-time static scheduling (PaStiX §III).

Historically "PASTIX scheduling strategy was based on a cost model of the
tasks executed that defines the execution order used at runtime during
the analyze phase"; the dynamic work-stealing layer was added later to
absorb the cost model's error on hierarchical machines.  This module
provides that static layer:

* :func:`static_schedule` — classic ETF/HEFT-style list scheduling of a
  :class:`TaskDAG` onto ``n_cores`` homogeneous cores using modelled
  durations, producing per-core ordered task lists and the predicted
  makespan;
* :class:`StaticPolicy` — a scheduler policy that *replays* the static
  assignment inside the machine simulator, optionally with work stealing
  disabled, so the value of dynamic correction can be measured when the
  true durations deviate from the model (the
  ``bench_ablations``/``tests`` perturbation experiments).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.dag.tasks import TaskDAG
from repro.runtime.base import PolicyTraits, SchedulerPolicy, bottom_levels

__all__ = ["StaticSchedule", "static_schedule", "StaticPolicy"]


@dataclass(frozen=True)
class StaticSchedule:
    """Result of analysis-time list scheduling."""

    core_of: np.ndarray          # task -> core
    order: np.ndarray            # global order of task start times
    start: np.ndarray            # predicted start time per task
    makespan: float              # predicted makespan

    @property
    def n_cores(self) -> int:
        return int(self.core_of.max()) + 1 if self.core_of.size else 0

    def core_list(self, core: int) -> np.ndarray:
        """Tasks of ``core`` in predicted start order."""
        mine = np.flatnonzero(self.core_of == core)
        return mine[np.argsort(self.start[mine], kind="stable")]


def static_schedule(
    dag: TaskDAG,
    durations: np.ndarray,
    n_cores: int,
) -> StaticSchedule:
    """List-schedule ``dag`` on ``n_cores`` cores with modelled durations.

    Ready tasks are started highest-bottom-level-first on the earliest
    available core (mutex groups are respected: two updates of one panel
    never overlap, matching what the runtime will enforce).
    """
    durations = np.asarray(durations, dtype=np.float64)
    if durations.shape != (dag.n_tasks,):
        raise ValueError("durations must have one entry per task")
    if n_cores < 1:
        raise ValueError("need at least one core")

    prio = bottom_levels(dag)
    import heapq

    deps = dag.n_deps.copy()
    ready: list[tuple[float, int]] = [
        (-float(prio[t]), int(t)) for t in np.flatnonzero(deps == 0)
    ]
    heapq.heapify(ready)
    core_free = np.zeros(n_cores, dtype=np.float64)
    task_end = np.zeros(dag.n_tasks, dtype=np.float64)
    dep_ready = np.zeros(dag.n_tasks, dtype=np.float64)
    mutex_free: dict[int, float] = {}
    core_of = np.full(dag.n_tasks, -1, dtype=np.int64)
    start = np.zeros(dag.n_tasks, dtype=np.float64)
    scheduled = 0

    while ready:
        _, t = heapq.heappop(ready)
        core = int(np.argmin(core_free))
        begin = max(core_free[core], dep_ready[t])
        grp = int(dag.mutex[t])
        if grp >= 0:
            begin = max(begin, mutex_free.get(grp, 0.0))
        end = begin + durations[t]
        core_of[t] = core
        start[t] = begin
        task_end[t] = end
        core_free[core] = end
        if grp >= 0:
            mutex_free[grp] = end
        scheduled += 1
        for s in dag.successors(t):
            dep_ready[s] = max(dep_ready[s], end)
            deps[s] -= 1
            if deps[s] == 0:
                heapq.heappush(ready, (-float(prio[s]), int(s)))

    if scheduled != dag.n_tasks:
        raise ValueError("task graph contains a cycle")
    order = np.argsort(start, kind="stable").astype(np.int64)
    return StaticSchedule(
        core_of=core_of,
        order=order,
        start=start,
        makespan=float(task_end.max(initial=0.0)),
    )


class StaticPolicy(SchedulerPolicy):
    """Replay a :class:`StaticSchedule` inside the machine simulator.

    Each core executes exactly its statically assigned tasks in the
    planned order; with ``work_stealing=True`` an idle core may instead
    take the next planned task of the most loaded core (the refinement
    PaStiX added for NUMA machines).  Comparing both modes under
    perturbed durations quantifies the static model's fragility.
    """

    def __init__(
        self,
        schedule: StaticSchedule,
        *,
        work_stealing: bool = False,
        task_overhead_s: float = 0.3e-6,
    ) -> None:
        self.traits = PolicyTraits(
            name="static" + ("+steal" if work_stealing else ""),
            granularity="2d",
            task_overhead_s=task_overhead_s,
            cache_reuse=True,
            dedicated_gpu_workers=False,
            prefetch=False,
            recompute_ld=False,
        )
        self.schedule = schedule
        self.work_stealing = work_stealing

    def setup(self) -> None:
        n = self.sim.n_cpu_workers
        self._plan: list[deque[int]] = [deque() for _ in range(n)]
        self._core_of: dict[int, int] = {}
        for t in self.schedule.order:
            core = int(self.schedule.core_of[t]) % n
            self._plan[core].append(int(t))
            self._core_of[int(t)] = core
        self._ready: set[int] = set()
        self._issued: set[int] = set()

    def on_ready(self, task: int) -> None:
        if task in self._issued:
            # The simulator handed the task back (mutex was held when it
            # was issued): restore it at the head of its plan.
            self._issued.discard(task)
            self._plan[self._core_of[task]].appendleft(task)
        self._ready.add(task)

    def _pop(self, core: int) -> int:
        t = self._plan[core].popleft()
        self._ready.discard(t)
        self._issued.add(t)
        return t

    def next_cpu_task(self, worker: int) -> int | None:
        plan = self._plan[worker]
        # Own plan first: only the *head* may run (static order).
        if plan and plan[0] in self._ready:
            return self._pop(worker)
        if not self.work_stealing:
            return None
        # Steal the ready head of the most loaded victim.
        victims = sorted(
            range(len(self._plan)),
            key=lambda v: -len(self._plan[v]),
        )
        for v in victims:
            if v == worker:
                continue
            vplan = self._plan[v]
            if vplan and vplan[0] in self._ready:
                return self._pop(v)
        return None

    def on_complete(self, task: int, resource) -> None:
        self._issued.discard(task)
