"""Shared monotonic sequence counter for event-heap tie-breaking.

Every discrete-event loop in the project (the machine simulator's event
heap, the distributed simulator's event heap *and* its per-node ready
heaps) breaks simultaneous-event ties with a monotonically increasing
integer drawn from one of these counters: ``(when, next(ctr), ...)``.
A heap tuple whose time key compares equal then falls through to the
sequence element, which is unique, so the pop order of simultaneous
events is total, reproducible, and independent of hash seeds, allocation
order, or callback-registration order.

This module exists so there is exactly one blessed implementation for
the RV5xx event-loop lint (:mod:`repro.verify.eventloop`) to recognize
and for the D8xx determinism auditor to trust:

* unlike ``itertools.count`` the counter exposes :attr:`~MonotonicCounter.count`
  (how many ties have been broken), which the simulators stamp into
  ``ExecutionTrace.meta`` as provenance;
* instances are plain picklable objects, so a trace-producing run can be
  checkpointed without losing its tie-break state.
"""

from __future__ import annotations

__all__ = ["MonotonicCounter", "monotonic_counter"]


class MonotonicCounter:
    """``next(ctr)`` returns 0, 1, 2, ... — never repeats, never skips."""

    __slots__ = ("_n",)

    def __init__(self, start: int = 0) -> None:
        self._n = start

    def __next__(self) -> int:
        n = self._n
        self._n = n + 1
        return n

    def __iter__(self) -> "MonotonicCounter":
        return self

    @property
    def count(self) -> int:
        """How many values have been drawn (the next value to be issued)."""
        return self._n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MonotonicCounter(next={self._n})"


def monotonic_counter(start: int = 0) -> MonotonicCounter:
    """The blessed tie-breaker factory for event/ready heaps."""
    return MonotonicCounter(start)
