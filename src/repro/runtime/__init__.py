"""Task-based runtimes.

Three scheduler policies reproduce the paper's three software stacks:

* :class:`NativePolicy`  — PaStiX's internal scheduler: 1D tasks, static
  cost-model priorities, work stealing, excellent locality, negligible
  per-task overhead, CPU only;
* :class:`StarPUPolicy`  — centralized list scheduling with online
  performance models (dmda: minimum expected completion time including
  transfers), data prefetch, one CPU core dedicated per GPU, no CPU
  cache-reuse policy;
* :class:`ParsecPolicy`  — decentralized per-core queues with data-reuse
  locality and work stealing, opportunistic GPU offload with multiple
  CUDA streams, tasks instantiated when ready (low memory, small extra
  dispatch cost).

:mod:`repro.runtime.threaded` executes the same DAG for real on a Python
thread pool (NumPy's BLAS releases the GIL); :mod:`repro.runtime.tracing`
provides the execution-trace container used by the simulator, the
threaded engine, and the tests.
"""

from repro.runtime.base import PolicyTraits, SchedulerPolicy, bottom_levels
from repro.runtime.static_schedule import (
    StaticPolicy,
    StaticSchedule,
    static_schedule,
)
from repro.runtime.native import NativePolicy
from repro.runtime.starpu import StarPUPolicy
from repro.runtime.parsec import ParsecPolicy
from repro.runtime.scheduling import (
    THREAD_SCHEDULERS,
    ThreadScheduler,
    get_thread_scheduler,
)
from repro.runtime.threaded import factorize_threaded, solve_threaded
from repro.runtime.tracing import ExecutionTrace, TraceEvent

_POLICIES = {
    "native": NativePolicy,
    "starpu": StarPUPolicy,
    "parsec": ParsecPolicy,
}


def get_policy(name: str, **kwargs) -> SchedulerPolicy:
    """Instantiate a scheduler policy by name (``native``/``starpu``/``parsec``)."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; available: {sorted(_POLICIES)}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "PolicyTraits",
    "SchedulerPolicy",
    "bottom_levels",
    "StaticPolicy",
    "StaticSchedule",
    "static_schedule",
    "NativePolicy",
    "StarPUPolicy",
    "ParsecPolicy",
    "factorize_threaded",
    "solve_threaded",
    "ThreadScheduler",
    "THREAD_SCHEDULERS",
    "get_thread_scheduler",
    "ExecutionTrace",
    "TraceEvent",
    "get_policy",
]
