"""Adaptive scheduling from measured execution history (dmda's loop).

The paper's central scheduling claim is that StarPU's ``dmda`` wins
because its per-kernel performance models are *refined online from
measured execution times* and because task placement charges a
transfer-cost term for staging operands.  The static ``"priority"``
scheduler ranks by flops-weighted critical-path levels — a model that
is never corrected by reality.  This module closes the loop:

* :class:`PerfHistory` — a per-(kernel, size-bucket) duration model
  keyed by :func:`repro.resilience.health.bucket_key` (the same
  bucketing the health monitor's EWMA uses, so the two measured-duration
  consumers can never drift apart).  It is seeded from the committed
  ``results/BENCH_*.json`` corpus and updated online from the durations
  the threaded runtime feeds back for every committed task
  (:meth:`~repro.runtime.scheduling.ThreadScheduler.on_duration`);
* :class:`AdaptiveScheduler` (``"adaptive"`` in
  :data:`~repro.runtime.scheduling.THREAD_SCHEDULERS`) — a shared heap
  ranked by expected-completion levels: bottom levels recomputed with
  *predicted durations* instead of raw flops, plus a
  :class:`~repro.machine.perfmodel.TransferCostModel` term charging
  each task the PCIe staging cost its panels would pay on the simulated
  GPU path.  With an empty history it degrades exactly to
  :class:`~repro.runtime.scheduling.CriticalPathScheduler` (same heap
  entries, same pop order — the cold-start identity the tests pin);
* :func:`suggest_config` — picks scheduler x accumulate x index_cache
  for a matrix from the benchmark corpus (minimum replay makespan).

Determinism contract: the model holds no wall-clock keys, iterates
dictionaries in sorted order, and breaks warm-heap ties with a
:class:`~repro.runtime.seq.MonotonicCounter`, so a same-seed replay
stays D801-clean and the stamped ``trace.meta["adaptive"]`` provenance
(model version + sample counts, audited by the A9xx pass) is identical
across runs.
"""

from __future__ import annotations

import heapq
import json
import threading
from pathlib import Path
from typing import Any, Optional

import numpy as np

from repro.machine.perfmodel import TransferCostModel
from repro.resilience.health import bucket_key
from repro.runtime.scheduling import THREAD_SCHEDULERS, ThreadScheduler
from repro.runtime.seq import MonotonicCounter

__all__ = [
    "MODEL_VERSION",
    "PerfHistory",
    "AdaptiveScheduler",
    "suggest_config",
    "suggest_blocking",
]

#: Version of the stamped model provenance (``trace.meta["adaptive"]``);
#: bumped whenever the bucket format or the stamp schema changes so the
#: A9xx auditor can reject stamps it does not understand.
MODEL_VERSION = 1

#: Default benchmark-corpus location for seeding and suggestions.
DEFAULT_RESULTS = Path("results")


class PerfHistory:
    """Measured per-(kernel, size-bucket) duration model.

    Each bucket accumulates ``[n, sum_flops, sum_seconds]`` for tasks
    whose :func:`~repro.resilience.health.bucket_key` matches; a bucket's
    rate is ``sum_flops / sum_seconds``.  Prediction falls back from the
    exact bucket to the nearest same-kernel bucket to the global
    measured rate, so a cold model with only corpus-level seeding still
    predicts durations proportional to flops — which is exactly the
    static ``"priority"`` ranking.

    Thread-safety: ``observe`` is called concurrently from worker
    threads and takes the internal lock; reads used for ranking happen
    at bind time, before any worker runs.
    """

    def __init__(self) -> None:
        # key -> [n, sum_flops, sum_seconds]
        self._buckets: dict[str, list[float]] = {}
        self._global: list[float] = [0.0, 0.0, 0.0]
        self._lock = threading.Lock()
        #: Samples consumed by :meth:`seed_from_results`.
        self.n_seeded = 0
        #: Per-bucket observation counts of the current run (reset by
        #: :meth:`start_run`); the deterministic half of the A9xx stamp.
        self.run_counts: dict[str, int] = {}

    # -- seeding -------------------------------------------------------
    def seed_from_results(
        self, path: "Path | str" = DEFAULT_RESULTS
    ) -> int:
        """Seed the global rate from a committed benchmark corpus.

        ``path`` is a ``BENCH_*.json`` report or a directory of them.
        The corpus stores per-cell aggregates (total flops, wall
        seconds), not per-kernel durations, so seeding fills the
        *global* rate: single-worker cells contribute their measured
        ``flops / wall_s`` (serial wall time is pure compute), and the
        report's ``calib_gflops`` is folded in as one weak sample when
        no such cell exists.  A report may additionally carry a
        top-level ``"buckets"`` section (``{key: [n, sum_flops,
        sum_seconds]}`` keyed by :func:`~repro.resilience.health.\
bucket_key` — the kernel micro-benchmark ``BENCH_kernels.json``
        emits one); those seed the per-bucket rates directly.  Returns
        the number of samples consumed.
        """
        p = Path(path)
        files = sorted(p.glob("BENCH_*.json")) if p.is_dir() else [p]
        consumed = 0
        for f in files:
            if not f.exists():
                continue
            try:
                payload = json.loads(f.read_text())
            except (OSError, ValueError):
                continue
            cells = payload.get("cells", [])
            had_serial = False
            for cell in cells:
                try:
                    flops = float(cell["flops"])
                    wall = float(cell["wall_s"])
                    workers = int(cell.get("n_workers", 0))
                except (KeyError, TypeError, ValueError):
                    continue
                if workers == 1 and flops > 0.0 and wall > 0.0:
                    with self._lock:
                        self._global[0] += 1.0
                        self._global[1] += flops
                        self._global[2] += wall
                    consumed += 1
                    had_serial = True
            buckets = payload.get("buckets", {})
            if isinstance(buckets, dict):
                for key in sorted(buckets):
                    vals = buckets[key]
                    try:
                        ns = float(vals[0])
                        fl = float(vals[1])
                        sec = float(vals[2])
                    except (TypeError, ValueError, IndexError):
                        continue
                    if ns <= 0.0 or fl <= 0.0 or sec <= 0.0:
                        continue
                    with self._lock:
                        b = self._buckets.setdefault(
                            str(key), [0.0, 0.0, 0.0]
                        )
                        b[0] += ns
                        b[1] += fl
                        b[2] += sec
                        self._global[0] += ns
                        self._global[1] += fl
                        self._global[2] += sec
                    consumed += 1
                    had_serial = True  # measured rates: skip calib fold
            calib = float(payload.get("calib_gflops", 0.0) or 0.0)
            if not had_serial and calib > 0.0:
                # One synthetic second at the calibrated rate.
                with self._lock:
                    self._global[0] += 1.0
                    self._global[1] += calib * 1e9
                    self._global[2] += 1.0
                consumed += 1
        with self._lock:
            self.n_seeded += consumed
        return consumed

    # -- online updates ------------------------------------------------
    def start_run(self) -> None:
        """Reset the per-run observation counters (called at bind)."""
        with self._lock:
            self.run_counts = {}

    def observe(self, key: str, flops: float, seconds: float) -> None:
        """Fold one measured task duration into its bucket."""
        if seconds <= 0.0:
            return
        with self._lock:
            b = self._buckets.setdefault(key, [0.0, 0.0, 0.0])
            b[0] += 1.0
            b[1] += max(float(flops), 0.0)
            b[2] += float(seconds)
            self._global[0] += 1.0
            self._global[1] += max(float(flops), 0.0)
            self._global[2] += float(seconds)
            self.run_counts[key] = self.run_counts.get(key, 0) + 1

    def update_from_trace(self, dag: Any, trace: Any) -> int:
        """Fold every task event of an ExecutionTrace into the model."""
        n = 0
        for e in trace.sorted_events():
            t = int(e.task)
            key = bucket_key(int(dag.kind[t]), float(dag.flops[t]))
            self.observe(key, float(dag.flops[t]), float(e.duration))
            n += 1
        return n

    # -- queries -------------------------------------------------------
    def has_samples(self) -> bool:
        """Any measured or seeded rate at all?"""
        with self._lock:
            return bool(self._buckets) or self._global[2] > 0.0

    @property
    def n_keys(self) -> int:
        with self._lock:
            return len(self._buckets)

    @property
    def n_observed(self) -> int:
        """Observations folded via :meth:`observe` this run."""
        with self._lock:
            return sum(self.run_counts.values())

    def rate(self, key: str) -> float:
        """Measured rate (flop/s) of ``key``'s bucket, 0.0 if unknown."""
        with self._lock:
            b = self._buckets.get(key)
            if b is not None and b[2] > 0.0 and b[1] > 0.0:
                return b[1] / b[2]
        return 0.0

    def global_rate(self) -> float:
        """Measured/seeded global rate (flop/s), 0.0 if empty."""
        with self._lock:
            if self._global[2] > 0.0 and self._global[1] > 0.0:
                return self._global[1] / self._global[2]
        return 0.0

    def predict(self, kind: int, flops: float) -> float:
        """Expected duration (s) of a task: bucket -> kin -> global.

        The fallback chain keeps predictions *proportional to flops*
        wherever no finer measurement exists, so an unseeded bucket
        never distorts the relative ordering the static priority
        scheduler would produce.
        """
        flops = max(float(flops), 1.0)
        key = bucket_key(kind, flops)
        r = self.rate(key)
        if r > 0.0:
            return flops / r
        # Nearest same-kernel bucket (deterministic: sorted scan).
        prefix = f"{int(kind)}:"
        want = int(key.split(":")[1])
        best: Optional[tuple[int, str]] = None
        with self._lock:
            for k in sorted(self._buckets):
                if not k.startswith(prefix):
                    continue
                d = abs(int(k.split(":")[1]) - want)
                if best is None or d < best[0]:
                    best = (d, k)
        if best is not None:
            r = self.rate(best[1])
            if r > 0.0:
                return flops / r
        r = self.global_rate()
        if r > 0.0:
            return flops / r
        return 0.0

    # -- persistence ---------------------------------------------------
    def to_json(self) -> str:
        """Serialized model (sorted keys — byte-stable)."""
        with self._lock:
            payload = {
                "model_version": MODEL_VERSION,
                "buckets": {k: list(self._buckets[k])
                            for k in sorted(self._buckets)},
                "global": list(self._global),
                "n_seeded": self.n_seeded,
            }
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "PerfHistory":
        payload = json.loads(text)
        version = int(payload.get("model_version", -1))
        if version != MODEL_VERSION:
            raise ValueError(
                f"unsupported PerfHistory model_version {version} "
                f"(expected {MODEL_VERSION})"
            )
        h = cls()
        h._buckets = {
            str(k): [float(x) for x in v]
            for k, v in payload.get("buckets", {}).items()
        }
        h._global = [float(x) for x in payload.get("global",
                                                   [0.0, 0.0, 0.0])]
        h.n_seeded = int(payload.get("n_seeded", 0))
        return h


class AdaptiveScheduler(ThreadScheduler):
    """Expected-completion heap refined from measured history (dmda).

    Ranking: bottom levels (:func:`repro.dag.analysis.\
longest_path_levels`) computed over *predicted durations* from the
    shared :class:`PerfHistory` instead of raw flops, plus a
    transfer-cost term — each task is charged the
    :class:`~repro.machine.perfmodel.TransferCostModel` cost of staging
    its source and target panels across the simulated PCIe link, which
    is what ``dmda`` adds to a task's expected completion when weighing
    the GPU path.  Ties in the warm heap are broken by a
    :class:`~repro.runtime.seq.MonotonicCounter` (push order), never by
    wall clock.

    Cold start: with no history at all the predicted-duration weights
    are undefined, so ``setup`` falls back to the raw flops levels and
    the heap entries become *exactly*
    :class:`~repro.runtime.scheduling.CriticalPathScheduler`'s
    ``(-level, task)`` tuples — bit-identical ordering, which the
    determinism suite pins.

    The runtime feeds every committed task's measured duration back via
    :meth:`on_duration` (``wants_durations``), so a history shared
    across runs — the benchmark reuses one instance across repeats —
    re-ranks later runs from reality rather than the model.
    """

    name = "adaptive"
    wants_durations = True

    def __init__(
        self,
        history: Optional[PerfHistory] = None,
        transfer: Optional[TransferCostModel] = None,
        transfer_weight: float = 1.0,
    ) -> None:
        self.history = history if history is not None else PerfHistory()
        self.transfer = (
            transfer if transfer is not None else TransferCostModel()
        )
        self.transfer_weight = float(transfer_weight)
        self._cold = True
        self._keys_at_bind = 0
        self._seeded_at_bind = 0

    def setup(self) -> None:
        from repro.dag.analysis import longest_path_levels

        self._cold = not self.history.has_samples()
        self._keys_at_bind = self.history.n_keys
        self._seeded_at_bind = self.history.n_seeded
        dag = self.dag
        if self._cold:
            self._levels = longest_path_levels(dag)
        else:
            n = dag.n_tasks
            weights = np.empty(n, dtype=np.float64)
            for t in range(n):
                weights[t] = self.history.predict(
                    int(dag.kind[t]), float(dag.flops[t])
                )
            weights += self._transfer_costs()
            self._levels = longest_path_levels(dag, weights=weights)
        self._heap: list[tuple[float, int] | tuple[float, int, int]] = []
        self._lock = threading.Lock()
        self._seq = MonotonicCounter()
        self.history.start_run()

    def _transfer_costs(self) -> np.ndarray:
        """Per-task PCIe staging cost (seconds) of the GPU path.

        A task offloaded to the simulated device must stage its source
        panel and its target panel; panels cross the link whole
        (:func:`repro.kernels.cost.panel_bytes` — the same unit the
        simulator and the M4xx auditor charge).  Without a symbol the
        byte sizes are unknown and the term is zero.
        """
        dag = self.dag
        n = dag.n_tasks
        out = np.zeros(n, dtype=np.float64)
        sym = getattr(dag, "symbol", None)
        if sym is None or self.transfer_weight == 0.0:
            return out
        from repro.kernels.cost import panel_bytes

        nbytes = panel_bytes(sym, factotype=dag.factotype)
        for t in range(n):
            src, tgt = int(dag.cblk[t]), int(dag.target[t])
            b = nbytes[src] + (nbytes[tgt] if tgt != src else 0.0)
            out[t] = self.transfer_weight * self.transfer.cost(b)
        return out

    # -- the concurrent surface ----------------------------------------
    def push(self, task: int, worker: int) -> int:
        rank = -self._sign_level(task)
        with self._lock:
            if self._cold:
                heapq.heappush(self._heap, (rank, task))
            else:
                heapq.heappush(self._heap,
                               (rank, next(self._seq), task))
        return -1

    def _sign_level(self, task: int) -> float:
        return float(self._levels[task])

    def pop(self, worker: int) -> Optional[int]:
        with self._lock:
            if self._heap:
                return int(heapq.heappop(self._heap)[-1])
        return None

    def has_work(self) -> bool:
        # Locked for the same reason as CriticalPathScheduler: the heap
        # is a plain list rearranged by multi-step sift operations.
        with self._lock:
            return bool(self._heap)

    def on_duration(self, task: int, seconds: float) -> None:
        dag = self.dag
        key = bucket_key(int(dag.kind[task]), float(dag.flops[task]))
        self.history.observe(key, float(dag.flops[task]), seconds)

    # -- provenance ----------------------------------------------------
    def model_stamp(self) -> dict[str, Any]:
        """The deterministic ``trace.meta["adaptive"]`` provenance.

        Every field is a function of the task set and the pre-run model
        state — never of wall-clock timings — so the stamp survives the
        D8xx fingerprint whitelist: two same-seed runs produce
        byte-identical stamps.  The A9xx auditor cross-checks
        ``observed``/``buckets`` against the trace's own task events.
        """
        return {
            "model_version": MODEL_VERSION,
            "cold_start": bool(self._cold),
            "seeded": int(self._seeded_at_bind),
            "keys_at_bind": int(self._keys_at_bind),
            "observed": int(self.history.n_observed),
            "buckets": {k: int(v)
                        for k, v in sorted(self.history.run_counts.items())},
        }

    # -- diagnostics ---------------------------------------------------
    def snapshot(self, limit: int = 15) -> list[int]:
        with self._lock:
            return [int(e[-1]) for e in sorted(self._heap)[:limit]]

    def stats(self) -> dict:
        return {
            "adaptive_cold_start": bool(self._cold),
            "history_keys": self.history.n_keys,
            "observed": self.history.n_observed,
            "global_gflops": self.history.global_rate() / 1e9,
        }


THREAD_SCHEDULERS[AdaptiveScheduler.name] = AdaptiveScheduler


def suggest_config(
    matrix: str,
    *,
    n_workers: Optional[int] = None,
    path: "Path | str" = DEFAULT_RESULTS / "BENCH_threaded.json",
) -> dict[str, Any]:
    """Pick scheduler x accumulate x index_cache for ``matrix``.

    Scans the committed threaded-benchmark corpus for the cell with the
    minimum deterministic replay makespan (``model_makespan_s``) on the
    given matrix (optionally pinned to ``n_workers``) and returns the
    knobs that produced it::

        {"scheduler": ..., "n_workers": ..., "accumulate": ...,
         "index_cache": ..., "dl_buffer": ..., "kernels": ...,
         "model_makespan_s": ...}

    A ``"compiled"``-variant cell maps to the opt toggles plus
    ``kernels="compiled"``; any other non-base variant keeps
    ``kernels="numpy"``.

    Ties break deterministically (scheduler name, then variant).  The
    fault-injection-only ``"inverse-priority"`` scheduler is never
    suggested.  Raises ``ValueError`` when the corpus has no usable cell
    for the matrix.
    """
    p = Path(path)
    try:
        payload = json.loads(p.read_text())
    except (OSError, ValueError) as exc:
        raise ValueError(f"unreadable bench corpus {p}: {exc}") from exc
    best: Optional[tuple[float, str, str, dict[str, Any]]] = None
    for cell in payload.get("cells", []):
        if cell.get("matrix") != matrix:
            continue
        sched = str(cell.get("scheduler", ""))
        if sched in ("", "inverse-priority"):
            continue
        if n_workers is not None \
                and int(cell.get("n_workers", -1)) != n_workers:
            continue
        mk = float(cell.get("model_makespan_s", 0.0) or 0.0)
        if mk <= 0.0:
            continue
        key = (mk, sched, str(cell.get("variant", "base")))
        if best is None or key < best[:3]:
            best = key + (cell,)
    if best is None:
        raise ValueError(
            f"no usable cells for matrix {matrix!r} in {p}"
        )
    cell = best[3]
    variant = str(cell.get("variant", "base"))
    opt = variant != "base"
    return {
        "matrix": matrix,
        "scheduler": cell["scheduler"],
        "n_workers": int(cell.get("n_workers", 0)),
        "accumulate": opt,
        "index_cache": opt,
        "dl_buffer": opt,
        "kernels": "compiled" if variant == "compiled" else "numpy",
        "model_makespan_s": float(cell["model_makespan_s"]),
    }


def suggest_blocking(
    history: PerfHistory, *, target_task_s: float = 2e-3
) -> dict[str, Any]:
    """Derive split/amalgamation thresholds from measured kernel rates.

    The symbolic splitting knobs trade task count against per-task
    weight; the right trade depends on how fast the numeric kernels
    actually run, which only a measured :class:`PerfHistory` (seeded
    from ``BENCH_kernels.json`` / ``BENCH_threaded.json`` or warmed
    online) knows.  Sizing rule: an update part of GEMM shape
    ``rows x w x w`` costs about ``2 * rows * w**2`` flops, so

    * panel width: ``2 * w**3 = target_task_s * rate`` (the square
      ``w x w x w`` update hits the target) — the
      ``SymbolicOptions.split_max_width`` suggestion, clamped to
      ``[8, 256]``;
    * rows per part: ``2 * split_rows * w**2 = target_task_s * rate``
      at that width — the ``build_dag(split_rows=...)`` suggestion,
      clamped to ``[w, 4096]``.

    The rate is refined once through :meth:`PerfHistory.predict` at the
    implied update size so a bucket-seeded history beats the global
    average.  Raises ``ValueError`` on an empty history or a
    non-positive ``target_task_s``.
    """
    from repro.dag.tasks import TaskKind

    if target_task_s <= 0.0:
        raise ValueError("target_task_s must be positive")
    rate = history.global_rate()
    if rate <= 0.0:
        raise ValueError(
            "history holds no measured rate; seed it from a benchmark "
            "corpus (PerfHistory.seed_from_results) or run first"
        )
    w = 8
    for _ in range(2):
        w = int(min(max(round((target_task_s * rate / 2.0) ** (1.0 / 3.0)),
                        8), 256))
        flops = 2.0 * float(w) ** 3
        dur = history.predict(int(TaskKind.UPDATE), flops)
        if dur > 0.0:
            rate = flops / dur
    split_rows = int(min(max(round(target_task_s * rate
                                   / (2.0 * float(w) ** 2)), w), 4096))
    return {
        "split_max_width": w,
        "split_rows": split_rows,
        "rate_gflops": rate / 1e9,
        "target_task_s": float(target_task_s),
    }
