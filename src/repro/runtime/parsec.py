"""PaRSEC-like policy.

Models the behaviours the paper attributes to PaRSEC:

* **decentralized** per-core ready queues: a task is pushed to the core
  that produced (last wrote) its target panel — the data-reuse heuristic
  that wins on multicore (§V-A) — with LIFO local pops and work stealing;
* tasks are instantiated from the compact parameterized task graph only
  when they become ready (tiny memory footprint, a small extra dispatch
  cost on the critical path — modelled in ``task_overhead_s``);
* **opportunistic GPU offload**: no dedicated GPU thread ("the first
  computational thread that submits a GPU task takes the management of
  the GPU"); large-enough updates are queued to the GPU whose memory
  already holds their data, and **multiple CUDA streams** overlap small
  kernels to fill the device (§V-C).
"""

from __future__ import annotations

import heapq
from collections import deque

from repro.runtime.base import PolicyTraits, SchedulerPolicy, bottom_levels

__all__ = ["ParsecPolicy"]


class ParsecPolicy(SchedulerPolicy):
    """Decentralized locality scheduler with multi-stream GPU offload."""

    def __init__(
        self,
        *,
        task_overhead_s: float = 1e-6,
        gpu_flops_threshold: float = 2e6,
    ) -> None:
        self.traits = PolicyTraits(
            name="parsec",
            granularity="2d",
            task_overhead_s=task_overhead_s,
            cache_reuse=True,
            dedicated_gpu_workers=False,
            prefetch=False,
            recompute_ld=True,
            index_cache=False,  # generic sparse-GEMM re-derives its maps
        )
        self.gpu_flops_threshold = gpu_flops_threshold

    def setup(self) -> None:
        sim = self.sim
        self._prio = bottom_levels(sim.dag)
        self._local: list[deque[int]] = [
            deque() for _ in range(sim.n_cpu_workers)
        ]
        self._rr = 0
        # Per-GPU heaps (largest GEMM first).  A target panel is bound to
        # one GPU on first offload so its accumulator stays resident —
        # the data-reuse policy that distinguishes PaRSEC (§IV).
        self._gpu_heaps: list[list[tuple[float, int]]] = [
            [] for _ in range(sim.machine.n_gpus)
        ]
        self._gpu_owner: dict[int, int] = {}
        self._gpu_load = [0.0] * sim.machine.n_gpus
        self._cpu_load = 0.0

    # ------------------------------------------------------------------
    def on_ready(self, task: int) -> None:
        sim = self.sim
        if (
            sim.gpu_eligible[task]
            and sim.dag.flops[task] >= self.gpu_flops_threshold
            and self._offload(task)
        ):
            return
        # Locality: enqueue on the core that last wrote the target panel.
        w = sim.last_writer_core(int(sim.dag.target[task]))
        if w < 0 or w >= sim.n_cpu_workers:
            w = self._rr
            self._rr = (self._rr + 1) % sim.n_cpu_workers
        self._local[w].append(task)
        self._cpu_load += float(sim.cpu_duration[task])

    def _offload(self, task: int) -> bool:
        """Opportunistic offload with target-panel GPU affinity.

        Updates of a GPU-owned target always follow their panel (the
        accumulator must not ping-pong).  A new target goes to the least
        loaded GPU only when that looks faster than the CPU pool —
        PaRSEC's opportunistic balance rather than StarPU's per-task
        cost-model placement.
        """
        sim = self.sim
        tgt = int(sim.dag.target[task])
        g = self._gpu_owner.get(tgt)
        if g is not None and g in sim.dead_gpus:
            del self._gpu_owner[tgt]  # the owner died: rebind the group
            g = None
        if g is None:
            live = [i for i in range(sim.machine.n_gpus)
                    if i not in sim.dead_gpus]
            if not live:
                return False
            g = min(live, key=lambda i: self._gpu_load[i])
            # No stream bonus in the estimate: concurrent kernels share the
            # device, so queued solo-seconds approximate drain time well.
            gpu_finish = self._gpu_load[g] + float(sim.gpu_duration[task])
            cpu_finish = self._cpu_load / max(sim.n_cpu_workers, 1) + float(
                sim.cpu_duration[task]
            )
            if gpu_finish >= cpu_finish:
                return False
            self._gpu_owner[tgt] = g
        heapq.heappush(self._gpu_heaps[g], (-float(sim.dag.flops[task]), task))
        self._gpu_load[g] += float(sim.gpu_duration[task])
        return True

    # ------------------------------------------------------------------
    def next_cpu_task(self, worker: int) -> int | None:
        task = self._pick_cpu(worker)
        if task is not None:
            self._cpu_load = max(
                0.0, self._cpu_load - float(self.sim.cpu_duration[task])
            )
        return task

    def _pick_cpu(self, worker: int) -> int | None:
        own = self._local[worker]
        if own:
            return own.pop()  # LIFO: freshest data still hot in cache
        # Work stealing: oldest task of the most loaded victim.
        victim = max(
            range(len(self._local)),
            key=lambda v: len(self._local[v]),
            default=None,
        )
        if victim is not None and self._local[victim]:
            return self._local[victim].popleft()
        return None

    def next_gpu_task(self, gpu: int) -> int | None:
        heap = self._gpu_heaps[gpu]
        if not heap:
            # Steal a whole target group from the most loaded GPU so the
            # moved accumulator panel pays its migration only once.
            donor = max(
                range(len(self._gpu_heaps)),
                key=lambda i: self._gpu_load[i],
                default=None,
            )
            if (
                donor is None
                or donor == gpu
                or len(self._gpu_heaps[donor]) < 4
            ):
                return None
            _, moved = heapq.heappop(self._gpu_heaps[donor])
            tgt = int(self.sim.dag.target[moved])
            self._gpu_owner[tgt] = gpu
            keep: list[tuple[float, int]] = []
            grabbed = [moved]
            for item in self._gpu_heaps[donor]:
                if int(self.sim.dag.target[item[1]]) == tgt:
                    grabbed.append(item[1])
                else:
                    keep.append(item)
            heapq.heapify(keep)
            self._gpu_heaps[donor] = keep
            for t in grabbed:
                heapq.heappush(heap, (-float(self.sim.dag.flops[t]), t))
                dur = float(self.sim.gpu_duration[t])
                self._gpu_load[donor] -= dur
                self._gpu_load[gpu] += dur
        if not heap:
            return None
        task = heapq.heappop(heap)[1]
        self._gpu_load[gpu] -= float(self.sim.gpu_duration[task])
        return task

    def on_device_loss(self, gpu: int) -> list:
        drained = [t for _, t in self._gpu_heaps[gpu]]
        self._gpu_heaps[gpu] = []
        self._gpu_load[gpu] = 0.0
        # Unbind every target group owned by the dead device; re-queued
        # tasks will rebind to a surviving GPU (or fall back to CPU).
        self._gpu_owner = {
            t: g for t, g in self._gpu_owner.items() if g != gpu
        }
        return drained
