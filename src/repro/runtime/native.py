"""PaStiX's native scheduler.

The baseline of every figure.  PaStiX's unit of scheduling is the 1D
task — a panel factorization fused with *all* the updates it generates,
executed back-to-back on one core — but each update releases its target's
dependency as soon as it is applied, not when the whole 1D task ends.
The policy therefore runs on the 2D DAG and reproduces the 1D behaviour
by *placement*: when panel ``k`` finishes on a core, every update of
``k`` is queued on that same core, in static priority order.  Idle cores
steal (the work-stealing refinement of [Faverge & Ramet 2008/2012] the
paper describes), panels are picked by analysis-time cost-model priority
(flops-weighted bottom levels), per-task overhead is negligible, locality
is maximal — and there is no GPU support (in the paper, native PaStiX
runs CPU-only; heterogeneous results come from the generic runtimes).

A strict fused-1D model (``granularity="1d"``) remains available through
:func:`repro.dag.build_dag` for the granularity ablation.
"""

from __future__ import annotations

import heapq
from collections import deque

from repro.dag.tasks import TaskKind
from repro.runtime.base import PolicyTraits, SchedulerPolicy, bottom_levels

__all__ = ["NativePolicy"]


class NativePolicy(SchedulerPolicy):
    """Static-priority scheduling with 1D placement + work stealing."""

    def __init__(self, *, task_overhead_s: float = 0.3e-6) -> None:
        self.traits = PolicyTraits(
            name="native",
            granularity="2d",
            task_overhead_s=task_overhead_s,
            cache_reuse=True,
            dedicated_gpu_workers=False,
            prefetch=False,
            recompute_ld=False,  # PaStiX's temp-buffer LDLT update kernel
            index_cache=True,    # solver structures precompute the maps
        )

    def setup(self) -> None:
        sim = self.sim
        self._prio = bottom_levels(sim.dag)
        self._panel_heap: list[tuple[float, int]] = []
        self._local: list[deque[int]] = [
            deque() for _ in range(sim.n_cpu_workers)
        ]
        self._rr = 0

    def on_ready(self, task: int) -> None:
        sim = self.sim
        if sim.dag.kind[task] == TaskKind.UPDATE:
            # Updates run on the core that factorized their source panel
            # (the 1D-task placement).
            w = sim.last_writer_core(int(sim.dag.cblk[task]))
            if w < 0 or w >= sim.n_cpu_workers:
                w = self._rr
                self._rr = (self._rr + 1) % sim.n_cpu_workers
            self._local[w].append(task)
        else:
            heapq.heappush(self._panel_heap, (-float(self._prio[task]), task))

    def next_cpu_task(self, worker: int) -> int | None:
        own = self._local[worker]
        if own:
            return own.popleft()  # finish the current 1D task first
        if self._panel_heap:
            return heapq.heappop(self._panel_heap)[1]
        # Work stealing from the most loaded core.
        victim = max(
            range(len(self._local)),
            key=lambda v: len(self._local[v]),
            default=None,
        )
        if victim is not None and self._local[victim]:
            return self._local[victim].popleft()
        return None
