"""StarPU-like policy.

Models the behaviours the paper attributes to StarPU:

* **centralized** scheduling with **online performance models** — the
  dmda ("deque model data aware") heuristic: each ready task is assigned
  to the resource minimising its expected completion time *including the
  data-transfer cost*;
* **prefetch** — inputs of a GPU-assigned task start moving immediately;
* **dedicated GPU workers** — "when a GPU is used, a CPU worker is
  removed" (§V-C): the simulator shrinks the CPU pool by one per GPU;
* **no CPU cache-reuse policy** (§V-A) — consecutive updates of one panel
  land on arbitrary cores, hence the multicore overhead vs PaRSEC;
* the highest per-task overhead of the three runtimes (centralized queues
  and model bookkeeping).
"""

from __future__ import annotations

import heapq
from collections import deque

from repro.runtime.base import PolicyTraits, SchedulerPolicy, bottom_levels

__all__ = ["StarPUPolicy"]


class StarPUPolicy(SchedulerPolicy):
    """Centralized dmda-style scheduler with perf models and prefetch."""

    def __init__(
        self,
        *,
        task_overhead_s: float = 3e-6,
        gpu_flops_threshold: float = 1e6,
    ) -> None:
        self.gpu_flops_threshold = gpu_flops_threshold
        self.traits = PolicyTraits(
            name="starpu",
            granularity="2d",
            task_overhead_s=task_overhead_s,
            cache_reuse=False,
            dedicated_gpu_workers=True,
            prefetch=True,
            recompute_ld=True,
            index_cache=False,  # generic sparse-GEMM re-derives its maps
        )

    def setup(self) -> None:
        sim = self.sim
        self._prio = bottom_levels(sim.dag)
        self._cpu_heap: list[tuple[float, int]] = []
        self._gpu_queues: list[deque[int]] = [
            deque() for _ in range(sim.machine.n_gpus)
        ]
        # Expected-availability clocks of each resource pool (the "deque
        # model": sum of work already committed to the resource).
        self._cpu_eta = 0.0
        self._gpu_eta = [0.0] * sim.machine.n_gpus
        # Where each target panel is *planned* to live, so the transfer
        # term sees assignments that have not executed yet (StarPU's
        # prefetch bookkeeping does the same).
        self._planned: dict[int, int] = {}

    # ------------------------------------------------------------------
    def on_ready(self, task: int) -> None:
        sim = self.sim
        if not sim.gpu_eligible[task]:
            self._push_cpu(task)
            return
        # dmda: estimated completion on the CPU pool vs. each GPU,
        # including the data-transfer term.
        tgt = int(sim.dag.target[task])
        planned = self._planned.get(tgt)
        spec = sim.machine.gpu
        migration = 2.0 * (
            sim.panel_bytes[tgt] / (spec.h2d_gbps * 1e9)
            + spec.transfer_latency_s
        )
        cpu_finish = (
            self._cpu_eta / max(sim.n_cpu_workers, 1)
            + sim.cpu_duration[task]
        )
        if planned is not None:
            cpu_finish += migration  # the accumulator must come home
        best, best_finish = -1, cpu_finish
        for g in range(sim.machine.n_gpus):
            if g in sim.dead_gpus:
                continue  # blacklisted by the resilience layer
            if planned is None and sim.dag.flops[task] < self.gpu_flops_threshold:
                break  # too small to open a new target group on a GPU
            finish = (
                self._gpu_eta[g]
                + sim.transfer_estimate(g, task)
                + sim.gpu_duration[task]
            )
            if planned is not None and planned != g:
                finish += migration
            if finish < best_finish:
                best, best_finish = g, finish
        if best < 0:
            self._push_cpu(task)
            if planned is not None:
                self._planned.pop(tgt, None)
        else:
            self._gpu_queues[best].append(task)
            self._gpu_eta[best] += sim.gpu_duration[task]
            self._planned[tgt] = best
            # Prefetch the (immutable) source panel right away.
            sim.prefetch(best, int(sim.dag.cblk[task]))

    def _push_cpu(self, task: int) -> None:
        heapq.heappush(self._cpu_heap, (-float(self._prio[task]), task))
        self._cpu_eta += self.sim.cpu_duration[task]

    # ------------------------------------------------------------------
    def next_cpu_task(self, worker: int) -> int | None:
        if not self._cpu_heap:
            return None
        task = heapq.heappop(self._cpu_heap)[1]
        self._cpu_eta = max(0.0, self._cpu_eta - self.sim.cpu_duration[task])
        return task

    def next_gpu_task(self, gpu: int) -> int | None:
        q = self._gpu_queues[gpu]
        if not q:
            return None
        task = q.popleft()
        self._gpu_eta[gpu] = max(
            0.0, self._gpu_eta[gpu] - self.sim.gpu_duration[task]
        )
        return task

    def on_device_loss(self, gpu: int) -> list:
        drained = list(self._gpu_queues[gpu])
        self._gpu_queues[gpu].clear()
        self._gpu_eta[gpu] = 0.0
        # Forget plans involving the dead device so the dmda estimate
        # re-places those target groups from scratch.
        self._planned = {
            t: g for t, g in self._planned.items() if g != gpu
        }
        return drained
