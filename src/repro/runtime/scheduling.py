"""Pluggable ready-task schedulers for the real threaded runtime.

The machine *simulator* reproduces the paper's three software stacks as
:class:`~repro.runtime.base.SchedulerPolicy` subclasses; this module is
their **real-thread twin**: the same scheduling shapes, but driving live
worker threads in :mod:`repro.runtime.threaded` instead of a virtual
clock.  §IV of the paper argues that multicore performance is decided by
exactly these policy differences, so the threaded engine lets each one
be measured on real wall-clock:

* :class:`GlobalFifoScheduler` (``"fifo"``) — the engine's historical
  baseline: one shared FIFO queue.  Every push and pop crosses one lock;
  no locality, no priorities.  Kept as the reference the perf gate
  measures the others against.
* :class:`WorkStealingScheduler` (``"ws"``) — PaStiX-native twin: one
  deque per worker, LIFO push/pop on the owner's end (depth-first, warm
  caches) and randomized FIFO stealing from victims' opposite end.
* :class:`CriticalPathScheduler` (``"priority"``) — dmda/StarPU twin: a
  shared heap ordered by flops-weighted longest-path-to-sink levels
  (:func:`repro.dag.analysis.longest_path_levels`), so the critical
  chain never waits behind bulk updates.
* :class:`LastPanelAffinityScheduler` (``"affinity"``) — PaRSEC
  cache-reuse twin: an update task is routed to the worker that last
  touched its target panel, keeping a panel's scatter-adds on the core
  whose cache holds it; stealing backstops load balance.
* :class:`InversePriorityScheduler` (``"inverse-priority"``) — a
  deliberately mis-prioritized heap (shortest path first).  Exists only
  as fault injection for the perf-regression gate's self-test
  (``make selftest``); never a sensible choice.

Thread-safety contract: ``push``/``pop``/``on_complete`` are called
concurrently from worker threads.  ``pop`` may transiently return
``None`` while ``has_work()`` is true (a steal race); callers must
re-poll rather than treat ``None`` as termination — the runtime's
parking protocol in :mod:`repro.runtime.threaded` does exactly that.
"""

from __future__ import annotations

import heapq
import random
import threading
from collections import deque
from typing import Callable, Optional

from repro.dag.tasks import TaskDAG, TaskKind

__all__ = [
    "ThreadScheduler",
    "GlobalFifoScheduler",
    "WorkStealingScheduler",
    "CriticalPathScheduler",
    "LastPanelAffinityScheduler",
    "InversePriorityScheduler",
    "THREAD_SCHEDULERS",
    "get_thread_scheduler",
]

#: Seed base for the randomized victim orders (deterministic per worker).
_STEAL_SEED = 0x5EED


class ThreadScheduler:
    """Base class: a thread-safe ready-task pool with routing hints."""

    #: Registry key; also stamped into ``ExecutionTrace.meta`` so the
    #: S2xx verifier can audit which policy produced a trace.
    name = "abstract"

    #: Optional instrumentation callback installed by the runtime:
    #: ``observer(kind, worker, victim, task)`` with ``kind="steal"``
    #: and ``task=-1`` for a failed probe.  Lets the C7xx concurrency
    #: auditor see steal traffic without the scheduler importing any
    #: tracing machinery; ``None`` (the default) costs one attribute
    #: read on the steal path and nothing on the local path.
    observer: Optional[Callable[[str, int, int, int], None]] = None

    #: Optional health oracle installed by the runtime when worker
    #: health monitoring is armed: ``health_rank(worker) -> 0|1|2``
    #: (see :data:`repro.resilience.HEALTH_RANK`).  Policies use it to
    #: degrade gracefully — a rank>=1 (degraded) worker receives no
    #: routed work and steals nothing, so a limping core drains its own
    #: queue without accreting more.  ``None`` (the default) costs one
    #: attribute read; scheduling is then byte-identical to a build
    #: without health monitoring.
    health_rank: Optional[Callable[[int], int]] = None

    dag: TaskDAG
    n_workers: int

    def bind(self, dag: TaskDAG, n_workers: int) -> None:
        """Attach to one run.  Re-binding resets all internal state."""
        self.dag = dag
        self.n_workers = int(n_workers)
        self.setup()

    def setup(self) -> None:
        """Per-run initialisation (queues, priorities, counters)."""

    # -- the concurrent surface ----------------------------------------
    def push(self, task: int, worker: int) -> int:
        """Make ``task`` ready.  ``worker`` is the discovering worker
        (``-1`` for initial seeding).  Returns the worker index the task
        was routed to (a wakeup hint), or ``-1`` for shared pools."""
        raise NotImplementedError

    def pop(self, worker: int) -> Optional[int]:
        """Hand ``worker`` a task, or ``None`` if it found nothing."""
        raise NotImplementedError

    def on_complete(self, task: int, worker: int) -> None:
        """Bookkeeping hook after ``task`` finished on ``worker``."""

    def pop_same_target(self, worker: int, target: int) -> Optional[int]:
        """Pop another ready update task into panel ``target`` from
        ``worker``'s own queue, if the policy tracks one.

        The fan-in accumulation hook: when the threaded runtime batches
        same-target updates it asks the scheduler for more of them
        before taking the target mutex.  Policies without per-worker
        queues (or that cannot answer cheaply) return ``None`` — the
        batch simply stays at size one.  Must only return tasks that
        ``pop`` could have returned to this worker.
        """
        return None

    def has_work(self) -> bool:
        """Approximate emptiness probe (used by the parking protocol)."""
        raise NotImplementedError

    # -- measured-duration feedback ------------------------------------
    #: Set by policies that want :meth:`on_duration` called; the runtime
    #: checks this flag so non-adaptive schedulers pay no clock reads.
    wants_durations = False

    def on_duration(self, task: int, seconds: float) -> None:
        """Measured wall-clock duration of a *committed* ``task``.

        Called by the threaded runtime once per successful task body
        (never for a cancelled hedge loser or a failed attempt), from
        the worker thread that ran it.  The default is a no-op; the
        adaptive scheduler folds the sample into its
        :class:`~repro.runtime.adaptive.PerfHistory`.
        """

    # -- diagnostics ---------------------------------------------------
    def snapshot(self, limit: int = 15) -> list[int]:
        """A bounded sample of queued tasks (watchdog diagnostics)."""
        raise NotImplementedError

    def stats(self) -> dict:
        """Counters for benchmark reports (best-effort, race-tolerant)."""
        return {}


class GlobalFifoScheduler(ThreadScheduler):
    """One shared FIFO deque behind one lock (the legacy engine)."""

    name = "fifo"

    def setup(self) -> None:
        self._queue: deque[int] = deque()
        self._lock = threading.Lock()

    def push(self, task: int, worker: int) -> int:
        with self._lock:
            self._queue.append(task)
        return -1

    def pop(self, worker: int) -> Optional[int]:
        with self._lock:
            if self._queue:
                return self._queue.popleft()
        return None

    def has_work(self) -> bool:
        # Deliberately lock-free: a deque's truthiness is a single
        # atomic length read under CPython's GIL (append/popleft never
        # leave the length transiently wrong), and the parking protocol
        # re-polls after a false positive/negative, so a stale answer
        # costs at most one bounded nap — never a lost task.
        return bool(self._queue)  # noqa: RV405

    def snapshot(self, limit: int = 15) -> list[int]:
        with self._lock:
            return [int(t) for t in list(self._queue)[:limit]]


class WorkStealingScheduler(ThreadScheduler):
    """Per-worker deques, LIFO locally, randomized FIFO stealing.

    The PaStiX-native shape: a worker pushes newly released tasks onto
    its *own* deque and pops from the same end (depth-first traversal of
    the elimination tree keeps the panels it just wrote hot in cache);
    an idle worker steals from the *opposite* end of a random victim,
    taking the oldest — and therefore most cache-cold — entry.  Victim
    order is drawn from a per-worker seeded RNG so runs are
    reproducible under ``PYTHONHASHSEED``-free conditions.
    """

    name = "ws"

    def setup(self) -> None:
        n = self.n_workers
        self._local: list[deque[int]] = [deque() for _ in range(n)]
        self._locks = [threading.Lock() for _ in range(n)]
        self._rngs = [random.Random(_STEAL_SEED + w) for w in range(n)]
        self._victims = [
            [v for v in range(n) if v != w] for w in range(n)
        ]
        self._seed_lock = threading.Lock()
        self._seed_next = 0
        self._n_steals = [0] * n
        self._n_local = [0] * n
        self._n_batched = [0] * n

    def _route(self, task: int, worker: int) -> int:
        """Which deque should ``task`` land on?"""
        hr = self.health_rank
        if 0 <= worker < self.n_workers:
            if hr is None or hr(worker) == 0:
                return worker
        for _ in range(self.n_workers):
            with self._seed_lock:
                w = self._seed_next
                self._seed_next = (w + 1) % self.n_workers
            if hr is None or hr(w) == 0:
                return w
        # Every worker is degraded or worse: fall back to anyone rather
        # than strand the task (the monitor never quarantines the last
        # dispatchable worker, so w is at worst degraded).
        return w

    def push(self, task: int, worker: int) -> int:
        w = self._route(task, worker)
        with self._locks[w]:
            self._local[w].append(task)
        return w

    def pop(self, worker: int) -> Optional[int]:
        with self._locks[worker]:
            if self._local[worker]:
                self._n_local[worker] += 1
                return self._local[worker].pop()      # LIFO: own end
        hr = self.health_rank
        if hr is not None and hr(worker) >= 1:
            # A degraded worker drains its own deque but never steals:
            # pulling work onto a limping core only makes it slower for
            # everyone.  (Stealing *from* it stays allowed — that is
            # how its queue drains when the runtime parks it.)
            return None
        order = self._victims[worker]
        if order:
            self._rngs[worker].shuffle(order)
            for v in order:
                if not self._local[v]:
                    continue
                t: Optional[int] = None
                with self._locks[v]:
                    if self._local[v]:
                        self._n_steals[worker] += 1
                        t = self._local[v].popleft()  # FIFO: cold end
                obs = self.observer
                if obs is not None:
                    obs("steal", worker, v, -1 if t is None else int(t))
                if t is not None:
                    return t
        return None

    #: How many entries of a deque the batching probe inspects; bounds
    #: the cost of :meth:`pop_same_target` on long queues.
    _BATCH_SCAN = 32

    def _pop_matching(self, owner: int, worker: int, target: int,
                      from_lifo: bool) -> Optional[int]:
        """Remove one ready update into ``target`` from ``owner``'s
        deque, scanning from the LIFO (hot) or FIFO (cold) end."""
        dag = self.dag
        upd = int(TaskKind.UPDATE)
        with self._locks[owner]:
            q = self._local[owner]
            # Emptiness and target match are decided together *under*
            # the owner's lock.  The victim scan used to pre-probe
            # ``self._local[v]`` unlocked and skip "empty" victims — a
            # TOCTOU window in which a concurrent push could land a
            # matching update that the batch probe then never saw
            # (and the probe itself was an unlocked read of a deque
            # mid-mutation, safe only by CPython accident).
            if not q:
                return None
            span = min(len(q), self._BATCH_SCAN)
            idx = (
                range(len(q) - 1, len(q) - 1 - span, -1)
                if from_lifo else range(span)
            )
            for i in idx:
                t = q[i]
                if (int(dag.kind[t]) == upd
                        and int(dag.target[t]) == target):
                    del q[i]
                    self._n_batched[worker] += 1
                    return int(t)
        return None

    def pop_same_target(self, worker: int, target: int) -> Optional[int]:
        """Find a ready update into panel ``target``: this worker's own
        deque first (LIFO end — the hot path), then each victim's FIFO
        end (a targeted steal; same-target updates released by other
        panels' owners usually live there).

        The victim scan takes each victim's deque lock unconditionally
        and lets :meth:`_pop_matching` decide emptiness under it; the
        runtime's ``_ready_upd`` guard already keeps this sweep off the
        no-sibling hot path, so the per-victim lock acquisition is the
        price of a race-free probe (see the TOCTOU note in
        :meth:`_pop_matching`)."""
        t = self._pop_matching(worker, worker, target, from_lifo=True)
        if t is not None:
            return t
        hr = self.health_rank
        if hr is not None and hr(worker) >= 1:
            return None  # degraded workers batch locally, never steal
        for v in self._victims[worker]:
            t = self._pop_matching(v, worker, target, from_lifo=False)
            if t is not None:
                obs = self.observer
                if obs is not None:
                    obs("steal", worker, v, t)
                return t
        return None

    def has_work(self) -> bool:
        # Deliberately lock-free (same memory-model argument as the
        # FIFO probe): len() of a deque is one atomic read per victim,
        # and the parking protocol tolerates stale answers by
        # re-polling with a bounded nap.
        return any(len(q) > 0 for q in self._local)  # noqa: RV405

    def snapshot(self, limit: int = 15) -> list[int]:
        out: list[int] = []
        for w in range(self.n_workers):
            with self._locks[w]:
                out.extend(int(t) for t in self._local[w])
            if len(out) >= limit:
                break
        return out[:limit]

    def stats(self) -> dict:
        # Best-effort diagnostic snapshot: the counters are per-worker
        # int cells written under each worker's own lock; summing them
        # without all N locks may be momentarily stale but never torn.
        return {  # noqa: RV405
            "steals": int(sum(self._n_steals)),
            "local_pops": int(sum(self._n_local)),
            "batched_pops": int(sum(self._n_batched)),
        }


class LastPanelAffinityScheduler(WorkStealingScheduler):
    """Route a panel's updates to the worker that last touched it.

    The PaRSEC cache-reuse shape (§V-A): the completion hook records
    which worker last wrote each panel; when an update task into that
    panel becomes ready it is pushed onto that worker's deque, so the
    scatter-adds into one facing panel tend to run where the panel is
    already cached.  Everything else (local LIFO, randomized stealing)
    is inherited from :class:`WorkStealingScheduler` — stealing keeps
    the affinity preference from starving idle workers.
    """

    name = "affinity"

    def setup(self) -> None:
        super().setup()
        n_panels = (
            self.dag.symbol.n_cblk if self.dag.symbol is not None
            else int(self.dag.target.max()) + 1 if self.dag.n_tasks else 0
        )
        # owner[p] == worker that last touched panel p (-1: nobody yet).
        self._owner = [-1] * n_panels
        self._n_affine = [0] * self.n_workers

    def _route(self, task: int, worker: int) -> int:
        if int(self.dag.kind[task]) == int(TaskKind.UPDATE):
            owner = self._owner[int(self.dag.target[task])]
            if 0 <= owner < self.n_workers:
                hr = self.health_rank
                if hr is not None and hr(owner) >= 1:
                    # Cache affinity loses to health: a warm cache on a
                    # limping core is still a limping core.
                    return super()._route(task, worker)
                if 0 <= worker < self.n_workers:
                    # Best-effort counter: a lost increment only skews a
                    # benchmark stat, never routing.
                    self._n_affine[worker] += 1  # noqa: RV401
                return owner
        return super()._route(task, worker)

    def on_complete(self, task: int, worker: int) -> None:
        # A panel task touches its own panel; an update task touches the
        # facing panel it scattered into.
        self._owner[int(self.dag.target[task])] = worker

    def stats(self) -> dict:
        out = super().stats()
        out["affine_routes"] = int(sum(self._n_affine))
        return out


class CriticalPathScheduler(ThreadScheduler):
    """Shared max-heap on longest-path-to-sink levels (dmda twin).

    StarPU's dmda ranks by a cost model of expected completion; on a
    homogeneous CPU pool that collapses to critical-path list
    scheduling, which this implements exactly: the ready task with the
    heaviest remaining dependency chain runs first.  One lock guards the
    heap — the point of this policy is *ordering*, and the bench harness
    quantifies what that ordering buys against the lock's cost.
    """

    name = "priority"

    #: +1 pops the highest level first; the inverse subclass flips it.
    _sign = 1.0

    def setup(self) -> None:
        from repro.dag.analysis import longest_path_levels

        self._levels = longest_path_levels(self.dag)
        self._heap: list[tuple[float, int]] = []
        self._lock = threading.Lock()

    def push(self, task: int, worker: int) -> int:
        entry = (-self._sign * float(self._levels[task]), task)
        with self._lock:
            heapq.heappush(self._heap, entry)
        return -1

    def pop(self, worker: int) -> Optional[int]:
        with self._lock:
            if self._heap:
                return heapq.heappop(self._heap)[1]
        return None

    def has_work(self) -> bool:
        # Under the lock, unlike the deque-based probes: a heap is a
        # plain list that ``heapq`` mutates through multi-step sift
        # operations, so even a truthiness read can observe it
        # mid-rearrangement — there is no CPython-atomicity argument
        # to lean on here (RV405 flags the unguarded form).
        with self._lock:
            return bool(self._heap)

    def snapshot(self, limit: int = 15) -> list[int]:
        with self._lock:
            return [int(t) for _, t in sorted(self._heap)[:limit]]


class InversePriorityScheduler(CriticalPathScheduler):
    """Anti-critical-path heap: fault injection for the perf gate.

    Pops the ready task with the *shortest* remaining chain first —
    the worst admissible list schedule.  ``bench_threaded.py
    --mis-prioritize`` swaps it in for ``"priority"`` so ``make
    selftest`` can prove the regression gate notices a wrecked
    schedule; it must never be reachable from production entry points.
    """

    name = "inverse-priority"

    _sign = -1.0


THREAD_SCHEDULERS: dict[str, type[ThreadScheduler]] = {
    GlobalFifoScheduler.name: GlobalFifoScheduler,
    WorkStealingScheduler.name: WorkStealingScheduler,
    CriticalPathScheduler.name: CriticalPathScheduler,
    LastPanelAffinityScheduler.name: LastPanelAffinityScheduler,
    InversePriorityScheduler.name: InversePriorityScheduler,
}
# :class:`repro.runtime.adaptive.AdaptiveScheduler` ("adaptive")
# registers itself when its module is imported (see the bottom of this
# file); it lives apart because it pulls in the measured-history model.


def get_thread_scheduler(
    spec: ThreadScheduler | type[ThreadScheduler] | str,
) -> ThreadScheduler:
    """Resolve a scheduler: registry name, instance, or subclass."""
    if isinstance(spec, ThreadScheduler):
        return spec
    if isinstance(spec, type) and issubclass(spec, ThreadScheduler):
        return spec()
    try:
        cls = THREAD_SCHEDULERS[spec]
    except (KeyError, TypeError):
        raise KeyError(
            f"unknown thread scheduler {spec!r}; "
            f"available: {sorted(THREAD_SCHEDULERS)}"
        ) from None
    return cls()


# Imported last so the cycle resolves whichever module loads first:
# repro.runtime.adaptive subclasses ThreadScheduler (defined above) and
# registers itself in THREAD_SCHEDULERS at its own import time.  A plain
# ``import`` (no attribute access) keeps this safe even when adaptive's
# own import of this module triggered it.
import repro.runtime.adaptive  # noqa: E402,F401  isort:skip
