"""Execution traces.

Produced by both the machine simulator and the threaded engine; consumed
by the tests (schedule-validity checking), the Gantt renderer, and the
benchmark reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.dag.tasks import TaskDAG

__all__ = [
    "TraceEvent",
    "DataEvent",
    "FaultEvent",
    "RecoveryEvent",
    "SyncEvent",
    "HealthEvent",
    "HedgeEvent",
    "ExecutionTrace",
    "META_FINGERPRINT_KEYS",
]

#: DataEvent kinds.
H2D = "h2d"
D2H = "d2h"
EVICT = "evict"

#: ``meta`` keys that are run *provenance* (and therefore fingerprinted),
#: as opposed to measured statistics (timing-dependent, excluded).
META_FINGERPRINT_KEYS = (
    "producer",
    "clock",
    "policy",
    "scheduler",
    "n_workers",
    "fanin",
    "seed",
    "rng",
    "index_cache",
    "accumulate",
    "dl_buffer",
    "health",
    # Adaptive-model provenance: model version + deterministic sample
    # counts (never measured means), stamped by the threaded runtime
    # and audited by the A9xx pass (repro.verify.adaptive).
    "adaptive",
)


@dataclass(frozen=True)
class TraceEvent:
    """One task execution: ``resource`` is e.g. ``"cpu3"`` or ``"gpu1"``.

    ``seq`` is the trace-global record sequence number stamped by
    :meth:`ExecutionTrace.record` — the order the producer *emitted*
    events, independent of their timestamps.  Simulators derive it from
    the same monotonic counters that break their heap ties, so the D8xx
    determinism auditor can check that simultaneous events have a total,
    reproducible order.  ``-1`` means "not stamped" (hand-built traces);
    it is excluded from equality so existing comparisons are unaffected.
    """

    task: int
    resource: str
    start: float
    end: float
    seq: int = field(default=-1, compare=False)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class DataEvent:
    """One data-movement event of the simulated memory system.

    ``kind`` is ``"h2d"``/``"d2h"`` for a PCIe transfer of panel ``cblk``
    over GPU ``gpu``'s link, or ``"evict"`` when the LRU device memory
    drops the panel (instantaneous: ``start == end``).  ``reason``
    records *why* the bytes moved — ``"demand"`` (a task needed them),
    ``"prefetch"`` (StarPU-style early fetch), ``"writeback"`` (newest
    copy pulled back to the host), or ``"capacity"`` (LRU eviction).
    The M4xx memory auditor replays these events against the task
    events, so the simulator must emit every residency change.
    """

    kind: str
    cblk: int
    gpu: int
    nbytes: float
    start: float
    end: float
    reason: str = "demand"

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class FaultEvent:
    """One injected (or observed) fault during an execution.

    ``kind`` names the failure mode — ``"worker-crash"``,
    ``"task-fault"``, ``"gpu-loss"``, ``"transfer-fail"``,
    ``"straggler"``, ``"node-fail"``, ``"message-loss"``,
    ``"task-error"`` (real threaded runtime).  ``task`` is the DAG task
    the fault hit (``-1`` for device/link-level faults); ``cblk`` the
    panel involved in a data fault (``-1`` otherwise).  The window
    ``[start, end]`` is the wall-clock span the failed attempt wasted;
    ``attempt`` counts retries of the same task/transfer (1-based) and
    ``nbytes`` the payload a failed transfer must re-send.  The R6xx
    resilience auditor pairs every fault with a :class:`RecoveryEvent`.
    """

    kind: str
    task: int
    cblk: int
    resource: str
    start: float
    end: float
    attempt: int = 1
    nbytes: float = 0.0


@dataclass(frozen=True)
class RecoveryEvent:
    """The runtime's answer to one :class:`FaultEvent`.

    ``kind`` names the recovery action — ``"requeue"`` (bounded task
    re-execution), ``"reroute-cpu"`` (GPU blacklist degradation),
    ``"retry-transfer"``, ``"restart"`` (node checkpoint/restart),
    ``"resend"`` (message retransmission), ``"absorb"`` (straggler
    tolerated in place).  ``time`` is when the decision was taken and
    ``delay_s`` the backoff the runtime imposed before the retry may
    start; pairing with the fault uses ``(task, cblk, attempt)``.
    """

    kind: str
    task: int
    cblk: int
    resource: str
    time: float
    attempt: int = 1
    delay_s: float = 0.0


@dataclass(frozen=True)
class SyncEvent:
    """One synchronization action of the real threaded runtime.

    ``kind`` names the action; ``worker`` the thread that performed it
    (``-1`` for the driver); ``obj`` the object involved; ``task`` the
    DAG task the action served (``-1`` when none).  ``[start, end]`` is
    the wall-clock window on the run's clock (instantaneous actions
    have ``start == end``).  The C7xx concurrency auditor replays these
    together with the task events, so the runtime must emit every
    mutual-exclusion window when sync recording is on:

    * ``"lock"`` — a mutex hold window: ``obj`` is the lock name
      (``"panel{t}"`` for the factorization's target-panel mutex,
      ``"mutex{g}"`` for a solve mutex group), ``start`` the moment the
      lock was *acquired*, ``end`` its release, ``wait_s`` how long the
      acquire blocked, ``n`` how many scatters the window covered;
    * ``"flush"`` — one batched update's contribution committing inside
      an accumulator flush; it shares the batch's ``"lock"`` window
      coordinates (``n`` is the batch size) so the auditor can tell a
      fan-in commit from a plain scatter;
    * ``"noop"`` — an update whose compute half produced no facing
      contribution; no lock was (or needed to be) taken;
    * ``"publish"`` — a task's completion became visible to the pool
      (dependency counters decremented); for batched updates this
      happens strictly after their flush;
    * ``"park"`` — a worker's idle nap window (``obj`` =
      ``"worker{w}"``), bounded by the runtime's park timeout;
    * ``"wake"`` — this worker set ``obj`` = ``"worker{v}"``'s wakeup
      event (instantaneous);
    * ``"steal"`` — a scheduler steal probe against ``obj`` =
      ``"worker{victim}"``: ``task`` is the stolen task, or ``-1``
      for a failed attempt (instantaneous).
    """

    kind: str
    worker: int
    obj: str
    task: int
    start: float
    end: float
    wait_s: float = 0.0
    n: int = 1

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class HealthEvent:
    """One health-state transition of a worker/node.

    ``resource`` names the monitored unit (``"cpu3"``, ``"n1"``);
    ``src``/``dst`` are states from
    :data:`repro.resilience.health.HEALTH_STATES` and every recorded
    pair must be a legal edge of the monitor's state machine (the R702
    audit).  ``time`` is when the transition was taken on the run's
    clock, ``ratio`` the EWMA slowdown estimate that drove it (observed
    duration over per-(kernel, size-bucket) expectation; ``0.0`` when
    the transition was time-driven), and ``reason`` a short tag
    (``"ewma"``, ``"probe"``, ``"probation"``, ``"relapse"``).
    Monitoring off ⇒ zero health events (the R705 identity).
    """

    resource: str
    src: str
    dst: str
    time: float
    ratio: float = 0.0
    reason: str = "ewma"


@dataclass(frozen=True)
class HedgeEvent:
    """One step of a speculative (hedged) re-execution.

    ``kind`` is ``"launch"`` (a duplicate of ``task`` started on
    ``resource`` because the primary attempt overstayed the hedge
    threshold on a suspect worker), ``"win"`` (the attempt on
    ``resource`` reached the commit gate first), or ``"cancel"`` (the
    losing attempt on ``resource`` was discarded — its side effects
    never committed).  ``primary`` names the resource of the original
    attempt.  The R704 audit requires every launch to resolve into
    exactly one win plus one cancel per launch, and R701 requires the
    task to commit exactly once.
    """

    kind: str
    task: int
    resource: str
    time: float
    primary: str = ""


@dataclass
class ExecutionTrace:
    """A complete schedule: task executions plus optional transfers.

    ``meta`` carries producer-side provenance — the threaded engine
    stamps ``{"scheduler": <registry name>, "n_workers": N}`` so the
    S2xx verifier and the benchmark reports know which policy made the
    schedule without re-deriving it from timings.
    """

    events: list[TraceEvent] = field(default_factory=list)
    transfers: list[TraceEvent] = field(default_factory=list)
    data_events: list[DataEvent] = field(default_factory=list)
    fault_events: list[FaultEvent] = field(default_factory=list)
    recovery_events: list[RecoveryEvent] = field(default_factory=list)
    sync_events: list[SyncEvent] = field(default_factory=list)
    health_events: list[HealthEvent] = field(default_factory=list)
    hedge_events: list[HedgeEvent] = field(default_factory=list)
    meta: dict = field(default_factory=dict)
    #: Next record-order sequence number (see :attr:`TraceEvent.seq`).
    next_seq: int = 0

    def _stamp_seq(self) -> int:
        s = self.next_seq
        self.next_seq = s + 1
        return s

    def record(self, task: int, resource: str, start: float, end: float) -> None:
        self.events.append(
            TraceEvent(task, resource, start, end, self._stamp_seq())
        )

    def record_transfer(self, tag: int, resource: str, start: float, end: float) -> None:
        self.transfers.append(
            TraceEvent(tag, resource, start, end, self._stamp_seq())
        )

    def record_data(
        self,
        kind: str,
        cblk: int,
        gpu: int,
        nbytes: float,
        start: float,
        end: float,
        reason: str = "demand",
    ) -> None:
        """Record one data-movement event (see :class:`DataEvent`).

        Transfers additionally keep the legacy ``transfers`` row (one
        ``link{gpu}:{kind}`` lane) so the Gantt/Chrome renderers keep
        working unchanged; evictions only appear in ``data_events``.
        """
        self.data_events.append(
            DataEvent(kind, cblk, gpu, nbytes, start, end, reason)
        )
        if kind in (H2D, D2H):
            self.record_transfer(cblk, f"link{gpu}:{kind}", start, end)

    def record_fault(
        self,
        kind: str,
        task: int,
        cblk: int,
        resource: str,
        start: float,
        end: float,
        attempt: int = 1,
        nbytes: float = 0.0,
    ) -> None:
        """Record one fault (see :class:`FaultEvent`)."""
        self.fault_events.append(
            FaultEvent(kind, task, cblk, resource, start, end, attempt, nbytes)
        )

    def record_recovery(
        self,
        kind: str,
        task: int,
        cblk: int,
        resource: str,
        time: float,
        attempt: int = 1,
        delay_s: float = 0.0,
    ) -> None:
        """Record one recovery action (see :class:`RecoveryEvent`)."""
        self.recovery_events.append(
            RecoveryEvent(kind, task, cblk, resource, time, attempt, delay_s)
        )

    def record_sync(
        self,
        kind: str,
        worker: int,
        obj: str,
        task: int,
        start: float,
        end: float,
        wait_s: float = 0.0,
        n: int = 1,
    ) -> None:
        """Record one synchronization action (see :class:`SyncEvent`)."""
        self.sync_events.append(
            SyncEvent(kind, worker, obj, task, start, end, wait_s, n)
        )

    def record_health(
        self,
        resource: str,
        src: str,
        dst: str,
        time: float,
        ratio: float = 0.0,
        reason: str = "ewma",
    ) -> None:
        """Record one health-state transition (see :class:`HealthEvent`)."""
        self.health_events.append(
            HealthEvent(resource, src, dst, time, ratio, reason)
        )

    def record_hedge(
        self,
        kind: str,
        task: int,
        resource: str,
        time: float,
        primary: str = "",
    ) -> None:
        """Record one hedged-execution step (see :class:`HedgeEvent`)."""
        self.hedge_events.append(
            HedgeEvent(kind, task, resource, time, primary)
        )

    def sorted_health_events(self) -> list[HealthEvent]:
        """Health transitions ordered by (time, resource) — the R702 view."""
        return sorted(self.health_events,
                      key=lambda e: (e.time, e.resource, e.src, e.dst))

    def sorted_hedge_events(self) -> list[HedgeEvent]:
        """Hedge steps ordered by (time, task, kind) — the R704 view."""
        return sorted(self.hedge_events,
                      key=lambda e: (e.time, e.task, e.kind, e.resource))

    def sorted_sync_events(self) -> list[SyncEvent]:
        """Sync events ordered by (start, end, worker) — the C7xx view."""
        return sorted(self.sync_events,
                      key=lambda e: (e.start, e.end, e.worker, e.obj))

    def lock_held_time(self) -> dict[str, float]:
        """Total seconds each lock object was held (``"lock"`` windows)."""
        out: dict[str, float] = {}
        for e in self.sync_events:
            if e.kind == "lock":
                out[e.obj] = out.get(e.obj, 0.0) + e.duration
        return out

    def sorted_fault_events(self) -> list[FaultEvent]:
        """Fault events ordered by (end, start, task) — the auditor's view."""
        return sorted(self.fault_events,
                      key=lambda e: (e.end, e.start, e.task))

    def sorted_recovery_events(self) -> list[RecoveryEvent]:
        """Recovery events ordered by (time, task, attempt)."""
        return sorted(self.recovery_events,
                      key=lambda e: (e.time, e.task, e.attempt))

    def sorted_data_events(self) -> list[DataEvent]:
        """Data events ordered by (end, start, cblk) — the auditor's view."""
        return sorted(self.data_events,
                      key=lambda e: (e.end, e.start, e.cblk))

    def bytes_moved(self, kind: str) -> float:
        """Total transferred bytes of one kind (``"h2d"`` or ``"d2h"``)."""
        return sum(e.nbytes for e in self.data_events if e.kind == kind)

    # ------------------------------------------------------------------
    def fingerprint_lines(self) -> list[str]:
        """Canonical line-per-fact rendering backing :meth:`fingerprint`.

        The D8xx determinism auditor diffs these lines directly to
        localize the first divergence between two runs, so the rendering
        must be stable: events are listed in their canonical sorted
        order, times as ``float.hex()`` (no rounding), and only the
        provenance subset of ``meta`` (:data:`META_FINGERPRINT_KEYS`)
        is included — measured statistics would differ run to run.

        Two clock domains (``meta["clock"]``):

        * ``"virtual"`` (simulators, the default) — simulated time is
          part of the deterministic contract, so every event tuple
          enters verbatim, including its record-order ``seq`` stamp:
          a tie resolved differently *is* a divergence;
        * ``"wall"`` (the real threaded runtime) — wall-clock timings
          and thread placement legitimately vary run to run, so only
          the order-insensitive deterministic content enters: the
          sorted set of executed tasks and the fault/recovery
          *decisions* ``(kind, task, cblk, attempt)``.  Health and
          hedge events are *excluded* in this domain: which worker
          trips the EWMA detector (and which in-flight task gets
          hedged) depends on measured wall durations, so same-seed
          replays legitimately differ there.
        """
        import json

        clock = str(self.meta.get("clock", "virtual"))
        lines = [f"clock={clock}"]
        for key in META_FINGERPRINT_KEYS:
            if key in self.meta:
                val = json.dumps(self.meta[key], sort_keys=True, default=str)
                lines.append(f"meta:{key}={val}")
        if clock == "wall":
            tasks = ",".join(str(t) for t in sorted(e.task for e in self.events))
            lines.append(f"tasks={tasks}")
            lines.extend(sorted(
                f"fa|{e.kind}|{e.task}|{e.cblk}|{e.attempt}"
                for e in self.fault_events
            ))
            lines.extend(sorted(
                f"re|{e.kind}|{e.task}|{e.cblk}|{e.attempt}"
                for e in self.recovery_events
            ))
            return lines
        for e in self.sorted_events():
            lines.append(f"ev|{e.task}|{e.resource}|{float(e.start).hex()}|"
                         f"{float(e.end).hex()}|{e.seq}")
        for tr in sorted(self.transfers,
                         key=lambda e: (e.start, e.end, e.resource, e.task)):
            lines.append(f"tr|{tr.task}|{tr.resource}|{float(tr.start).hex()}|"
                         f"{float(tr.end).hex()}|{tr.seq}")
        for d in self.sorted_data_events():
            lines.append(f"da|{d.kind}|{d.cblk}|{d.gpu}|{d.nbytes!r}|"
                         f"{float(d.start).hex()}|{float(d.end).hex()}|{d.reason}")
        for f in self.sorted_fault_events():
            lines.append(f"fa|{f.kind}|{f.task}|{f.cblk}|{f.resource}|"
                         f"{float(f.start).hex()}|{float(f.end).hex()}|{f.attempt}|"
                         f"{f.nbytes!r}")
        for r in self.sorted_recovery_events():
            lines.append(f"re|{r.kind}|{r.task}|{r.cblk}|{r.resource}|"
                         f"{float(r.time).hex()}|{r.attempt}|{r.delay_s!r}")
        for s in self.sorted_sync_events():
            lines.append(f"sy|{s.kind}|{s.worker}|{s.obj}|{s.task}|"
                         f"{float(s.start).hex()}|{float(s.end).hex()}|{s.wait_s!r}|{s.n}")
        for h in self.sorted_health_events():
            lines.append(f"he|{h.resource}|{h.src}|{h.dst}|"
                         f"{float(h.time).hex()}|{h.ratio!r}|{h.reason}")
        for g in self.sorted_hedge_events():
            lines.append(f"hg|{g.kind}|{g.task}|{g.resource}|{g.primary}|"
                         f"{float(g.time).hex()}")
        return lines

    def fingerprint(self) -> str:
        """Order-sensitive sha256 digest of the canonical trace content.

        Two same-seed runs of any simulator must produce identical
        fingerprints (the D801 replay check); any reordering of
        simultaneous events, dropped tie-break, or edited provenance
        changes the digest.  See :meth:`fingerprint_lines` for what is
        (and deliberately is not) covered per clock domain.
        """
        import hashlib

        h = hashlib.sha256()
        for line in self.fingerprint_lines():
            h.update(line.encode())
            h.update(b"\n")
        return h.hexdigest()

    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        return max((e.end for e in self.events), default=0.0)

    def busy_time(self) -> dict[str, float]:
        """Total busy seconds per resource."""
        out: dict[str, float] = {}
        for e in self.events:
            out[e.resource] = out.get(e.resource, 0.0) + e.duration
        return out

    def resources(self) -> list[str]:
        return sorted({e.resource for e in self.events})

    def start_end(self, task: int) -> tuple[float, float]:
        for e in self.events:
            if e.task == task:
                return e.start, e.end
        raise KeyError(f"task {task} not in trace")

    def sorted_events(self) -> list[TraceEvent]:
        """Events ordered by (start, end, task) — the verifier's view."""
        return sorted(self.events, key=lambda e: (e.start, e.end, e.task))

    def events_by_resource(self) -> dict[str, list[TraceEvent]]:
        """Per-resource event lists, each sorted by (start, end, task)."""
        out: dict[str, list[TraceEvent]] = {}
        for e in self.sorted_events():
            out.setdefault(e.resource, []).append(e)
        return out

    def iter_resource(self, resource: str) -> Iterable[TraceEvent]:
        """Time-ordered events of one resource."""
        return iter(self.events_by_resource().get(resource, []))

    # ------------------------------------------------------------------
    def validate(
        self,
        dag: TaskDAG,
        *,
        exclusive_resources: Optional[Iterable[str]] = None,
        check_mutex: bool = True,
        check_gpu_kind: bool = True,
        tol: float = 1e-12,
    ) -> None:
        """Assert the schedule is feasible.

        Thin wrapper over :func:`repro.verify.schedule.assert_valid_schedule`
        (the canonical implementation): every task exactly once,
        happens-before on every edge, exclusive resources never
        double-booked, GPU placement restricted to UPDATE tasks, mutex
        windows disjoint.  Raises ``AssertionError`` on violations.
        """
        from repro.verify.schedule import assert_valid_schedule

        assert_valid_schedule(
            dag,
            self,
            exclusive_resources=exclusive_resources,
            check_mutex=check_mutex,
            check_gpu_kind=check_gpu_kind,
            tol=tol,
        )

    # ------------------------------------------------------------------
    def gantt(self, *, width: int = 100) -> str:
        """ASCII Gantt chart (one row per resource)."""
        span = self.makespan
        if span <= 0:
            return "(empty trace)"
        lines = []
        for res in self.resources():
            row = [" "] * width
            for e in self.events:
                if e.resource != res:
                    continue
                a = int(e.start / span * (width - 1))
                b = max(a + 1, int(e.end / span * (width - 1)))
                for i in range(a, min(b, width)):
                    row[i] = "#"
            lines.append(f"{res:>6} |{''.join(row)}|")
        lines.append(f"{'':>6}  makespan = {span:.6f} s")
        return "\n".join(lines)

    def to_csv(self, path) -> None:
        """Dump events as CSV (task,resource,start,end)."""
        with open(path, "w") as fh:
            fh.write("task,resource,start,end\n")
            for e in self.events:
                fh.write(f"{e.task},{e.resource},{e.start!r},{e.end!r}\n")

    def to_chrome_trace(self, path, dag: Optional[TaskDAG] = None) -> None:
        """Write the schedule in Chrome trace-event format.

        Open the file at ``chrome://tracing`` or https://ui.perfetto.dev
        to inspect the schedule interactively.  When ``dag`` is given,
        events are labelled with task kind and panel indices; transfers
        appear on their own link rows.
        """
        import json

        def label(task: int) -> str:
            if dag is None:
                return f"task {task}"
            from repro.dag.tasks import TaskKind

            kind = TaskKind(int(dag.kind[task]))
            if kind == TaskKind.UPDATE:
                return f"update {dag.cblk[task]}->{dag.target[task]}"
            if kind == TaskKind.SUBTREE:
                return f"subtree @{dag.cblk[task]}"
            return f"panel {dag.cblk[task]}"

        rows = sorted({e.resource for e in self.events}
                      | {e.resource for e in self.transfers})
        tid = {r: i for i, r in enumerate(rows)}
        events = []
        for r, i in tid.items():
            events.append({
                "name": "thread_name", "ph": "M", "pid": 0, "tid": i,
                "args": {"name": r},
            })
        for e in self.events:
            events.append({
                "name": label(e.task),
                "cat": "task",
                "ph": "X",
                "pid": 0,
                "tid": tid[e.resource],
                "ts": e.start * 1e6,
                "dur": max(e.duration * 1e6, 0.01),
                "args": {"task": e.task},
            })
        for e in self.transfers:
            events.append({
                "name": e.resource,
                "cat": "transfer",
                "ph": "X",
                "pid": 0,
                "tid": tid[e.resource],
                "ts": e.start * 1e6,
                "dur": max(e.duration * 1e6, 0.01),
            })
        with open(path, "w") as fh:
            json.dump({"traceEvents": events}, fh)
