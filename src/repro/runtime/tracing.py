"""Execution traces.

Produced by both the machine simulator and the threaded engine; consumed
by the tests (schedule-validity checking), the Gantt renderer, and the
benchmark reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from repro.dag.tasks import TaskDAG

__all__ = ["TraceEvent", "ExecutionTrace"]


@dataclass(frozen=True)
class TraceEvent:
    """One task execution: ``resource`` is e.g. ``"cpu3"`` or ``"gpu1"``."""

    task: int
    resource: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ExecutionTrace:
    """A complete schedule: task executions plus optional transfers."""

    events: list[TraceEvent] = field(default_factory=list)
    transfers: list[TraceEvent] = field(default_factory=list)

    def record(self, task: int, resource: str, start: float, end: float) -> None:
        self.events.append(TraceEvent(task, resource, start, end))

    def record_transfer(self, tag: int, resource: str, start: float, end: float) -> None:
        self.transfers.append(TraceEvent(tag, resource, start, end))

    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        return max((e.end for e in self.events), default=0.0)

    def busy_time(self) -> dict[str, float]:
        """Total busy seconds per resource."""
        out: dict[str, float] = {}
        for e in self.events:
            out[e.resource] = out.get(e.resource, 0.0) + e.duration
        return out

    def resources(self) -> list[str]:
        return sorted({e.resource for e in self.events})

    def start_end(self, task: int) -> tuple[float, float]:
        for e in self.events:
            if e.task == task:
                return e.start, e.end
        raise KeyError(f"task {task} not in trace")

    # ------------------------------------------------------------------
    def validate(
        self,
        dag: TaskDAG,
        *,
        exclusive_resources: Optional[Iterable[str]] = None,
        check_mutex: bool = True,
        tol: float = 1e-12,
    ) -> None:
        """Assert the schedule is feasible.

        * every task appears exactly once;
        * dependencies: no task starts before all predecessors ended;
        * exclusive resources (CPU workers) never run two tasks at once;
        * mutex groups (updates to one panel) never overlap.
        """
        seen = np.zeros(dag.n_tasks, dtype=np.int64)
        start = np.empty(dag.n_tasks)
        end = np.empty(dag.n_tasks)
        for e in self.events:
            seen[e.task] += 1
            start[e.task] = e.start
            end[e.task] = e.end
            assert e.end >= e.start - tol, f"task {e.task} ends before start"
        assert np.all(seen == 1), (
            f"tasks executed != once: {np.flatnonzero(seen != 1)[:10]}"
        )
        for t in range(dag.n_tasks):
            for s in dag.successors(t):
                assert start[s] >= end[t] - tol, (
                    f"dependency violated: {t} -> {s}"
                )

        excl = (
            set(exclusive_resources)
            if exclusive_resources is not None
            else {r for r in self.resources() if r.startswith("cpu")}
        )
        by_res: dict[str, list[TraceEvent]] = {}
        for e in self.events:
            by_res.setdefault(e.resource, []).append(e)
        for res, evs in by_res.items():
            if res not in excl:
                continue
            evs.sort(key=lambda e: e.start)
            for a, b in zip(evs, evs[1:]):
                assert b.start >= a.end - tol, (
                    f"overlap on {res}: tasks {a.task} and {b.task}"
                )

        if check_mutex:
            by_group: dict[int, list[int]] = {}
            for t in range(dag.n_tasks):
                g = int(dag.mutex[t])
                if g >= 0:
                    by_group.setdefault(g, []).append(t)
            for g, tasks in by_group.items():
                tasks.sort(key=lambda t: start[t])
                for a, b in zip(tasks, tasks[1:]):
                    assert start[b] >= end[a] - tol, (
                        f"mutex {g} violated by tasks {a}, {b}"
                    )

    # ------------------------------------------------------------------
    def gantt(self, *, width: int = 100) -> str:
        """ASCII Gantt chart (one row per resource)."""
        span = self.makespan
        if span <= 0:
            return "(empty trace)"
        lines = []
        for res in self.resources():
            row = [" "] * width
            for e in self.events:
                if e.resource != res:
                    continue
                a = int(e.start / span * (width - 1))
                b = max(a + 1, int(e.end / span * (width - 1)))
                for i in range(a, min(b, width)):
                    row[i] = "#"
            lines.append(f"{res:>6} |{''.join(row)}|")
        lines.append(f"{'':>6}  makespan = {span:.6f} s")
        return "\n".join(lines)

    def to_csv(self, path) -> None:
        """Dump events as CSV (task,resource,start,end)."""
        with open(path, "w") as fh:
            fh.write("task,resource,start,end\n")
            for e in self.events:
                fh.write(f"{e.task},{e.resource},{e.start!r},{e.end!r}\n")

    def to_chrome_trace(self, path, dag: Optional[TaskDAG] = None) -> None:
        """Write the schedule in Chrome trace-event format.

        Open the file at ``chrome://tracing`` or https://ui.perfetto.dev
        to inspect the schedule interactively.  When ``dag`` is given,
        events are labelled with task kind and panel indices; transfers
        appear on their own link rows.
        """
        import json

        def label(task: int) -> str:
            if dag is None:
                return f"task {task}"
            from repro.dag.tasks import TaskKind

            kind = TaskKind(int(dag.kind[task]))
            if kind == TaskKind.UPDATE:
                return f"update {dag.cblk[task]}->{dag.target[task]}"
            if kind == TaskKind.SUBTREE:
                return f"subtree @{dag.cblk[task]}"
            return f"panel {dag.cblk[task]}"

        rows = sorted({e.resource for e in self.events}
                      | {e.resource for e in self.transfers})
        tid = {r: i for i, r in enumerate(rows)}
        events = []
        for r, i in tid.items():
            events.append({
                "name": "thread_name", "ph": "M", "pid": 0, "tid": i,
                "args": {"name": r},
            })
        for e in self.events:
            events.append({
                "name": label(e.task),
                "cat": "task",
                "ph": "X",
                "pid": 0,
                "tid": tid[e.resource],
                "ts": e.start * 1e6,
                "dur": max(e.duration * 1e6, 0.01),
                "args": {"task": e.task},
            })
        for e in self.transfers:
            events.append({
                "name": e.resource,
                "cat": "transfer",
                "ph": "X",
                "pid": 0,
                "tid": tid[e.resource],
                "ts": e.start * 1e6,
                "dur": max(e.duration * 1e6, 0.01),
            })
        with open(path, "w") as fh:
            json.dump({"traceEvents": events}, fh)
