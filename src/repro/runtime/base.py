"""Scheduler-policy interface.

A policy plugs into the machine simulator
(:mod:`repro.machine.simulator`): the simulator owns time, dependencies,
panel coherence, mutexes, transfers and GPU sharing; the policy owns the
*decisions* — which queue a ready task joins and which task an idle
resource picks next.  The simulator is visible to the policy through a
narrow helper surface documented on :class:`SchedulerPolicy.bind`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.dag.tasks import TaskDAG

__all__ = ["PolicyTraits", "SchedulerPolicy", "bottom_levels"]


@dataclass(frozen=True)
class PolicyTraits:
    """Static characteristics of a scheduler policy.

    These encode the runtime differences the paper discusses:

    * ``granularity`` — ``"1d"`` (PaStiX fused tasks) or ``"2d"``;
    * ``task_overhead_s`` — per-task dispatch cost on a CPU worker
      (PaRSEC pays a little extra to instantiate tasks lazily; StarPU's
      centralized scheduler pays more; the native static scheduler
      almost nothing);
    * ``cache_reuse`` — whether the policy keeps a panel's consumers on
      the core that produced it (PaStiX, PaRSEC yes; StarPU no — §V-A);
    * ``dedicated_gpu_workers`` — StarPU removes one CPU worker per GPU;
    * ``prefetch`` — StarPU starts input transfers at assignment time;
    * ``recompute_ld`` — generic runtimes recompute (L·D) inside each
      LDLᵀ update instead of keeping PaStiX's temporary buffer;
    * ``index_cache`` — whether the runtime's update kernels reuse
      precomputed couple scatter maps (PaStiX's solver structures) or
      re-derive the index bookkeeping inside every sparse-GEMM task
      (the generic-runtime kernels the paper wraps, §V).
    """

    name: str
    granularity: str = "2d"
    task_overhead_s: float = 2e-6
    cache_reuse: bool = True
    dedicated_gpu_workers: bool = False
    prefetch: bool = False
    recompute_ld: bool = True
    index_cache: bool = True


class SchedulerPolicy(ABC):
    """Base class for scheduler policies."""

    traits: PolicyTraits

    def bind(self, sim) -> None:
        """Attach to a simulator before the run.

        The simulator exposes (at least): ``dag``, ``machine``, ``time``,
        ``n_cpu_workers``, ``cpu_duration[t]``, ``gpu_duration[t]``,
        ``gpu_eligible[t]`` (bool array), ``transfer_estimate(g, t)``,
        ``last_writer_core(cblk)``, ``prefetch(g, cblk)``.
        """
        self.sim = sim
        self.setup()

    def setup(self) -> None:
        """Per-run initialisation (queues, priorities)."""

    @abstractmethod
    def on_ready(self, task: int) -> None:
        """A task's dependencies are all satisfied."""

    @abstractmethod
    def next_cpu_task(self, worker: int) -> int | None:
        """An idle CPU worker asks for work (None = nothing for it now)."""

    def next_gpu_task(self, gpu: int) -> int | None:
        """An idle GPU stream asks for work."""
        return None

    def on_device_loss(self, gpu: int) -> list:
        """GPU ``gpu`` was blacklisted (resilience layer).

        Drain and return every task parked in this policy's per-GPU
        structures for that device; the simulator re-queues each one as
        a plain ready task.  Policies without per-GPU queues keep the
        default empty answer.
        """
        return []

    def on_complete(self, task: int, resource) -> None:
        """Notification after a task completes (optional hook)."""


def bottom_levels(dag: TaskDAG) -> np.ndarray:
    """Flops-weighted bottom level of every task.

    ``bl[t]`` = weight of the heaviest path from ``t`` to a sink,
    including ``t`` itself — the classic list-scheduling priority, and
    the analogue of PaStiX's analysis-time cost-model ordering.  Thin
    alias of :func:`repro.dag.analysis.longest_path_levels` (the
    canonical implementation, shared with the real threaded scheduler).
    """
    from repro.dag.analysis import longest_path_levels

    return longest_path_levels(dag)
