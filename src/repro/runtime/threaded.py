"""Real parallel execution of the factorization DAG on Python threads.

NumPy's BLAS kernels release the GIL, so panel factorizations and GEMM
updates genuinely overlap across worker threads.  Dependency management
mirrors the simulator: a shared ready deque, per-panel mutexes for the
in-out update access, and completion-driven release of successors.

This engine is the correctness twin of the simulated runtimes: it runs
the same DAG with the same kernels and must produce bit-for-bit the same
factor as the sequential driver (floating-point reduction order inside a
panel is identical; only the inter-panel update order varies, which
changes results within roundoff — the tests bound the difference).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Optional

import numpy as np

from repro.core.factor import NumericFactor
from repro.dag.builder import build_dag
from repro.dag.tasks import TaskKind
from repro.kernels.panel import panel_factorize, panel_update
from repro.runtime.tracing import ExecutionTrace
from repro.sparse.csc import SparseMatrixCSC
from repro.symbolic.structures import SymbolMatrix

__all__ = ["factorize_threaded", "solve_threaded"]


class _ThreadedRun:
    def __init__(self, factor: NumericFactor, dag, n_workers: int,
                 workspace: bool, trace: Optional[ExecutionTrace]) -> None:
        self.factor = factor
        self.dag = dag
        self.n_workers = n_workers
        self.workspace = workspace
        self.trace = trace
        self.deps_left = dag.n_deps.copy()
        self.ready: deque[int] = deque(int(t) for t in dag.sources())
        self.n_done = 0
        self.cv = threading.Condition()
        self.panel_locks = [
            threading.Lock() for _ in range(dag.symbol.n_cblk)
        ]
        self.failure: Optional[BaseException] = None
        self.t0 = time.perf_counter()

    # ------------------------------------------------------------------
    def _execute(self, t: int, worker: int) -> None:
        dag = self.dag
        kind = TaskKind(int(dag.kind[t]))
        start = time.perf_counter() - self.t0
        if kind == TaskKind.UPDATE:
            tgt = int(dag.target[t])
            # Blocking acquire is deadlock-free: a worker holds at most
            # one panel lock and never waits on anything else while
            # holding it.
            with self.panel_locks[tgt]:
                panel_update(
                    self.factor, int(dag.cblk[t]), tgt,
                    workspace=self.workspace,
                )
        else:
            panel_factorize(self.factor, int(dag.cblk[t]))
        if self.trace is not None:
            end = time.perf_counter() - self.t0
            with self.cv:
                self.trace.record(t, f"cpu{worker}", start, end)

    def _worker(self, worker: int) -> None:
        while True:
            with self.cv:
                while not self.ready and self.n_done < self.dag.n_tasks \
                        and self.failure is None:
                    self.cv.wait()
                if self.failure is not None or self.n_done == self.dag.n_tasks:
                    return
                t = self.ready.popleft()
            try:
                self._execute(t, worker)
            except BaseException as exc:  # propagate to the caller
                with self.cv:
                    self.failure = exc
                    self.cv.notify_all()
                return
            with self.cv:
                self.n_done += 1
                for s in self.dag.successors(t):
                    self.deps_left[s] -= 1
                    if self.deps_left[s] == 0:
                        self.ready.append(int(s))
                self.cv.notify_all()

    def run(self) -> None:
        threads = [
            threading.Thread(target=self._worker, args=(w,), daemon=True)
            for w in range(self.n_workers)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        if self.failure is not None:
            raise self.failure
        if self.n_done != self.dag.n_tasks:
            raise RuntimeError("threaded factorization stalled")


class _ThreadedSolve:
    """Task bodies for the parallel triangular solve.

    Executes the DAG of :func:`repro.dag.build_solve_dag` for real:
    forward panel solves and GEMV slices, the LDLᵀ diagonal scaling
    folded into the start of each backward panel, then the backward
    sweep.  Shared-vector regions are protected by the same mutex
    namespaces the DAG declares (forward: the facing panel; backward:
    the source panel).
    """

    def __init__(self, factor: NumericFactor, x: np.ndarray) -> None:
        import scipy.linalg as sla

        self.sla = sla
        self.factor = factor
        self.x = x
        # Backward contributions accumulate separately so they never
        # interleave with forward reads of the same panel columns.
        self.acc = np.zeros_like(x)
        self.sym = factor.symbol
        self.K = self.sym.n_cblk

    def run_task(self, dag, task: int) -> None:
        from repro.kernels.panel import update_slice

        sla, factor, sym, x = self.sla, self.factor, self.sym, self.x
        src, tgt = int(dag.cblk[task]), int(dag.target[task])
        kind = TaskKind(int(dag.kind[task]))
        f, l = int(sym.cblk_ptr[src]), int(sym.cblk_ptr[src + 1])
        w = l - f
        panel = factor.L[src]
        backward = task >= dag.n_tasks // 2  # [Pf | Uf | Pb | Ub] layout

        if kind != TaskKind.UPDATE:
            diag = panel[:w, :w]
            unit = factor.factotype in ("ldlt", "lu")
            if not backward:
                x[f:l] = sla.solve_triangular(
                    diag, x[f:l], lower=True, unit_diagonal=unit,
                    check_finite=False,
                )
                return
            rhs = x[f:l]
            if factor.factotype == "ldlt":
                rhs = rhs / factor.D[src]
            rhs = rhs - self.acc[f:l]
            if factor.factotype == "lu":
                x[f:l] = sla.solve_triangular(
                    diag, rhs, lower=False, check_finite=False
                )
            else:
                x[f:l] = sla.solve_triangular(
                    diag, rhs, lower=True, unit_diagonal=unit,
                    trans="T", check_finite=False,
                )
            return

        i0, i1, rk = update_slice(factor, src, tgt)
        rows = rk[i0:i1]
        if not backward:
            x[rows] -= panel[w + i0: w + i1, :] @ x[f:l]
        else:
            block = (
                factor.U[src][w + i0: w + i1, :]
                if factor.factotype == "lu"
                else panel[w + i0: w + i1, :]
            )
            self.acc[f:l] += block.T @ x[rows]


def solve_threaded(
    factor: NumericFactor,
    b: np.ndarray,
    *,
    n_workers: int = 4,
) -> np.ndarray:
    """Parallel triangular solve of the factored system on threads.

    Equivalent to :func:`repro.core.triangular.solve_factored` (the tests
    assert agreement to roundoff) but executes the solve-phase DAG on a
    worker pool.
    """
    from repro.dag.solve_builder import build_solve_dag

    x = np.array(b, dtype=factor.dtype, copy=True)
    dag = build_solve_dag(factor.symbol, factor.factotype, dtype=factor.dtype)
    body = _ThreadedSolve(factor, x)

    deps_left = dag.n_deps.copy()
    ready: deque[int] = deque(int(t) for t in dag.sources())
    cv = threading.Condition()
    locks = [threading.Lock() for _ in range(2 * factor.symbol.n_cblk)]
    state = {"done": 0, "failure": None}

    def worker() -> None:
        while True:
            with cv:
                while not ready and state["done"] < dag.n_tasks \
                        and state["failure"] is None:
                    cv.wait()
                if state["failure"] is not None or state["done"] == dag.n_tasks:
                    return
                t = ready.popleft()
            try:
                grp = int(dag.mutex[t])
                if grp >= 0:
                    with locks[grp]:
                        body.run_task(dag, t)
                else:
                    body.run_task(dag, t)
            except BaseException as exc:
                with cv:
                    state["failure"] = exc
                    cv.notify_all()
                return
            with cv:
                state["done"] += 1
                for s in dag.successors(t):
                    deps_left[s] -= 1
                    if deps_left[s] == 0:
                        ready.append(int(s))
                cv.notify_all()

    threads = [
        threading.Thread(target=worker, daemon=True) for _ in range(n_workers)
    ]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    if state["failure"] is not None:
        raise state["failure"]
    if state["done"] != dag.n_tasks:
        raise RuntimeError("threaded solve stalled")
    return x


def factorize_threaded(
    symbol: SymbolMatrix,
    matrix: SparseMatrixCSC,
    factotype: str,
    *,
    n_workers: int = 4,
    workspace: bool = True,
    dtype=None,
    trace: Optional[ExecutionTrace] = None,
) -> NumericFactor:
    """Factorize on a thread pool; returns the :class:`NumericFactor`.

    Pass an :class:`ExecutionTrace` to collect per-task timings (adds a
    little locking overhead).
    """
    factor = NumericFactor.assemble(symbol, matrix, factotype, dtype=dtype)
    dag = build_dag(
        symbol, factotype, granularity="2d", dtype=factor.dtype
    )
    run = _ThreadedRun(factor, dag, n_workers, workspace, trace)
    run.run()
    return factor
