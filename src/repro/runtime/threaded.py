"""Real parallel execution of the factorization DAG on Python threads.

NumPy's BLAS kernels release the GIL, so panel factorizations and GEMM
updates genuinely overlap across worker threads.  Scheduling is
pluggable (:mod:`repro.runtime.scheduling`): per-worker work-stealing
deques (PaStiX twin), a critical-path-priority heap (dmda twin), a
last-panel-affinity router (PaRSEC cache-reuse twin), or the legacy
global FIFO baseline — selected via ``factorize_threaded(...,
scheduler=...)`` and stamped into the trace's ``meta`` for the S2xx
verifier.

Lock discipline is deliberately narrow:

* the sparse GEMM of an update runs *outside* the target-panel mutex
  (:func:`repro.kernels.panel.panel_update_compute`); only the
  scatter-add into the facing panel serializes
  (:func:`~repro.kernels.panel.panel_update_scatter`);
* completion notifications use per-worker wakeup events instead of one
  global condition variable, so finishing a task never stampedes the
  whole pool;
* trace rows are buffered per worker and merged once at ``run()`` exit,
  so tracing never contends with the scheduler.

This engine is the correctness twin of the simulated runtimes: it runs
the same DAG with the same kernels and must produce bit-for-bit the same
factor as the sequential driver (floating-point reduction order inside a
panel is identical; only the inter-panel update order varies, which
changes results within roundoff — the tests bound the difference).
"""

from __future__ import annotations

import threading
import time
from typing import Optional

import numpy as np

from repro.core.factor import NumericFactor
from repro.dag.builder import build_dag
from repro.dag.tasks import TaskKind
from repro.kernels.panel import (
    panel_factorize,
    panel_update,
    panel_update_compute,
    panel_update_scatter,
)
from repro.resilience import (
    FaultModel,
    HealthMonitor,
    HealthPolicy,
    bucket_key,
    window_factor,
)
from repro.runtime.scheduling import ThreadScheduler, get_thread_scheduler
from repro.runtime.tracing import ExecutionTrace
from repro.sparse.csc import SparseMatrixCSC
from repro.symbolic.structures import SymbolMatrix

__all__ = ["factorize_threaded", "solve_threaded"]

#: Bound on a parked worker's nap.  Wakeups are evented, so this only
#: matters if a wakeup races the parking protocol; it turns a lost
#: signal into a few-ms hiccup instead of a hang.
_PARK_TIMEOUT_S = 0.02


class _PoolRun:
    """Scheduler-driven thread-pool execution of one task DAG.

    The shared engine beneath the factorization and solve runs; a
    subclass supplies the task body (:meth:`_run_task`).  Hardening is
    uniform across both phases:

    * a task body that raises is retried up to ``max_retries`` times
      (each failed attempt lands in the trace as a ``"task-error"``
      fault with a ``"requeue"`` recovery);
    * past the budget the task is *quarantined* — its exception is kept,
      its not-yet-run descendants are abandoned, and every independent
      task still executes (no whole-run abort).  ``run()`` re-raises the
      first quarantined exception once the rest of the DAG drained;
    * ``watchdog_s`` bounds the wait for progress: instead of joining
      forever on a wedged pool, ``run()`` raises a diagnostic naming the
      scheduler queue and the blocked frontier.

    NOTE: retrying is only sound for task bodies that fail *before*
    mutating shared state (argument validation, resource errors).  For
    factorization updates the compute/scatter split makes the whole GEMM
    re-runnable; a partially applied scatter is not.  Production
    runtimes checkpoint the panel first, which an in-memory engine
    cannot.
    """

    #: Used in stall/watchdog messages ("factorization" / "solve").
    phase_label = "run"

    def __init__(self, dag, n_workers: int,
                 trace: Optional[ExecutionTrace],
                 scheduler: ThreadScheduler | str,
                 max_retries: int = 0,
                 watchdog_s: float | None = None,
                 record_sync: bool = False,
                 faults: Optional[FaultModel] = None,
                 health: Optional[HealthPolicy] = None) -> None:
        self.dag = dag
        self.n_workers = max(1, int(n_workers))
        self.trace = trace
        self.max_retries = max_retries
        self.watchdog_s = watchdog_s
        self.scheduler = get_thread_scheduler(scheduler)
        self.scheduler.bind(dag, self.n_workers)
        self.deps_left = dag.n_deps.copy()
        self.n_done = 0
        self.done = np.zeros(dag.n_tasks, dtype=bool)
        # One lock for dependency/completion state; queue state lives in
        # the scheduler behind its own (finer) locks.
        self.state = threading.Lock()
        self.wakeups = [threading.Event() for _ in range(self.n_workers)]
        self._trace_rows: list[list[tuple[int, float, float]]] = [
            [] for _ in range(self.n_workers)
        ]
        # Sync instrumentation is all-or-nothing: when off, every hook
        # is a single `is None` branch — no clock reads, no buffers, no
        # observer — so untraced runs stay bit-identical.  Buffers are
        # per worker (slot -1 = the driver thread) and lock-free; they
        # merge into the trace at run() exit like the task rows.
        self._sync_rows: Optional[list[list[tuple]]] = (
            [[] for _ in range(self.n_workers + 1)]
            if (record_sync and trace is not None) else None
        )
        self.attempts: dict[int, int] = {}
        self.quarantined: dict[int, BaseException] = {}
        self.abandoned: set[int] = set()
        self.aborted = False
        self.t0 = time.perf_counter()

        # Fault injection (wall-clock engine).  Only *declarative*
        # fault state is consumed — spec-pinned stragglers and the
        # persistent limplock windows; rate-based kinds draw from a
        # shared RNG whose consumption order is thread-racy here, so
        # the simulators own those.  Slowdowns are injected as sleeps
        # proportional to measured kernel time, which perturbs timing
        # only: the numerics stay bitwise identical to a fault-free
        # run.
        self.faults = faults
        self._limp: dict[int, list] = {}
        self._straggle: dict[int, float] = {}
        if faults is not None:
            self._limp = faults.pop_windows("limplock")
            # Only task-pinned stragglers: which attempt a floating or
            # rate-drawn spec matches depends on thread interleaving.
            for s in list(faults.specs):
                if s.kind == "straggler" and s.task >= 0:
                    self._straggle[s.task] = max(s.factor, 1.0)
                    faults.specs.remove(s)
            if trace is not None:
                trace.meta["faults"] = {"seed": faults.seed}
                for w, spans in sorted(self._limp.items()):
                    for (w0, _until, _f) in spans:
                        trace.record_fault("limplock", -1, -1,
                                           f"cpu{w}", w0, w0)
                        trace.record_recovery("degrade", -1, -1,
                                              f"cpu{w}", w0)

        # Worker health monitoring + hedged re-execution.  Every hook
        # below is gated on ``self.health is not None`` so a run
        # without monitoring goes through byte-identical code paths.
        self.health: Optional[HealthMonitor] = None
        self.n_hedges = 0
        if health is not None:
            self.health = HealthMonitor(
                (f"cpu{w}" for w in range(self.n_workers)), policy=health)
            #: task -> (worker, start) for attempts begun through the
            #: plain execute path (the hedging candidate pool).
            self._inflight: dict[int, tuple[int, float]] = {}
            #: Tasks whose side effects have been committed (the
            #: exactly-once gate both attempts of a hedged task race).
            self._committed: set[int] = set()
            #: Hedged tasks: ``task -> primary worker``.
            self._hedged: dict[int, int] = {}
            # Per-worker event buffers, merged at run() exit like the
            # task rows (recording never takes a shared lock).
            self._health_rows: list[list[tuple]] = [
                [] for _ in range(self.n_workers)
            ]
            self._hedge_rows: list[list[tuple]] = [
                [] for _ in range(self.n_workers)
            ]
            #: Wall time of each worker's last completed task (watchdog
            #: diagnostics; single-writer per slot, lock-free).
            self._last_done = [0.0] * self.n_workers
            #: Kernel seconds of the attempt just run, stamped by the
            #: task body (single-writer per slot).  The monitor must
            #: see the worker's own execution speed — wall elapsed
            #: includes mutex wait, which is queueing, not health: a
            #: worker stuck behind a limping peer's lock hold would
            #: otherwise get flagged for the peer's slowness.
            self._kern = [0.0] * self.n_workers
            self.scheduler.health_rank = (
                lambda w: self.health.rank(f"cpu{w}"))
            if trace is not None:
                trace.meta["health"] = {"hedge": bool(health.hedge)}
        if trace is not None:
            trace.meta["producer"] = "runtime.threaded"
            # Wall clock: timings and thread placement vary run to run,
            # so ExecutionTrace.fingerprint() only digests the
            # order-insensitive deterministic content (see tracing.py).
            trace.meta["clock"] = "wall"
            trace.meta["scheduler"] = self.scheduler.name
            trace.meta["n_workers"] = self.n_workers
            if self._sync_rows is not None:
                trace.meta["sync_trace"] = True
        if self._sync_rows is not None:
            self.scheduler.observer = self._observe_steal
        for t in dag.sources():
            self._push(int(t), -1)

    # -- sync instrumentation ------------------------------------------
    def _now(self) -> float:
        return time.perf_counter() - self.t0

    def _sync(self, kind: str, worker: int, obj: str, task: int,
              start: float, end: float, wait_s: float = 0.0,
              n: int = 1) -> None:
        """Buffer one sync event (caller checked ``_sync_rows``)."""
        assert self._sync_rows is not None
        self._sync_rows[worker].append(
            (kind, worker, obj, task, start, end, wait_s, n)
        )

    def _observe_steal(self, kind: str, worker: int, victim: int,
                       task: int) -> None:
        """Scheduler observer: steal probes land in the thief's buffer."""
        if self._sync_rows is not None:
            now = self._now()
            self._sync(kind, worker, f"worker{victim}", task, now, now)

    # -- fault injection and health monitoring --------------------------
    def _health_key(self, t: int) -> str:
        """(kernel, size-bucket) expectation key for task ``t``."""
        kind = int(self.dag.kind[t])
        flops = getattr(self.dag, "flops", None)
        if flops is None:
            return bucket_key(kind, 0.0)
        return bucket_key(kind, float(flops[t]))

    def _record_health(self, worker: int, transitions) -> None:
        """Buffer monitor transitions (caller is worker ``worker``)."""
        if transitions and self.trace is not None:
            self._health_rows[worker].extend(transitions)

    def _record_hedge(self, worker: int, kind: str, t: int,
                      resource: str, when: float, primary: str) -> None:
        if self.trace is not None:
            self._hedge_rows[worker].append(
                (kind, t, resource, when, primary))

    def _inject(self, t: int, worker: int, kern_s: float) -> None:
        """Sleep out the injected slowdown of task ``t`` on ``worker``.

        The sleep is proportional to the just-measured kernel time
        (``factor``x slowdown = ``(factor-1) * kern_s`` extra), so the
        perturbation is purely temporal: numerics stay bitwise
        identical to a fault-free run.  Callers place this *between*
        a task's lock-free compute and its locked commit, which is
        exactly where a limping core loses the race to a healthy
        hedge duplicate.
        """
        if self.faults is None:
            return
        now = self._now()
        factor = window_factor(self._limp[worker], now) \
            if worker in self._limp else 1.0
        sf = self._straggle.pop(t, None)
        if sf is not None:
            factor *= sf
        if factor <= 1.0:
            return
        extra = kern_s * (factor - 1.0)
        if sf is not None and self.trace is not None:
            cblk = int(self.dag.cblk[t])
            # One-shot straggler: trace-visible as a fault absorbed in
            # place (the R601 pairing for stragglers).  Persistent
            # limplock was already recorded once at its onset.
            with self.state:
                self.trace.record_fault(
                    "straggler", t, cblk, f"cpu{worker}", now, now + extra)
                self.trace.record_recovery(
                    "absorb", t, cblk, f"cpu{worker}", now + extra)
        # The nap IS the fault being modeled (a limping core burning
        # wall time), not a synchronization shortcut.
        time.sleep(extra)  # noqa: RV404

    def _hedgeable(self, t: int) -> bool:
        """May ``t`` be speculatively duplicated?  Only task bodies with
        an idempotent-commit step (subclasses opt in)."""
        return False

    # -- task body (subclass surface) ----------------------------------
    def _run_task(self, t: int, worker: int) -> None:
        raise NotImplementedError

    def _push(self, t: int, worker: int) -> int:
        """Make ``t`` ready.  Subclass hook wrapping ``scheduler.push``
        so runs that need ready-task accounting can observe every
        enqueue (the fan-in batching guard)."""
        # The scheduler binding is final after bind(); push/pop guard
        # the scheduler's internal state with its own lock.
        return self.scheduler.push(t, worker)  # noqa: RV405

    def _execute(self, t: int, worker: int) -> Optional[bool]:
        start = time.perf_counter() - self.t0
        if self.health is None:
            self._run_task(t, worker)
            if self.trace is not None or self.scheduler.wants_durations:
                end = time.perf_counter() - self.t0
                if self.trace is not None:
                    # Buffered: merged into the trace at run() exit so
                    # a traced completion never takes a shared lock.
                    self._trace_rows[worker].append((t, start, end))
                if self.scheduler.wants_durations:
                    # Measured-duration feedback for the adaptive
                    # model; exactly once per committed task.
                    self.scheduler.on_duration(t, end - start)
            return None
        # Monitored: register the in-flight attempt (the hedging
        # candidate pool and the watchdog's in-flight ages), time the
        # body, and feed the duration to the health monitor.  A body
        # that returns False lost the idempotent-commit race to a hedge
        # duplicate: its side effects were discarded at the gate, so it
        # gets no trace row and no completion — but its elapsed time is
        # still observed (a worker that always loses its hedges would
        # otherwise never complete anything and its EWMA would freeze).
        self._inflight[t] = (worker, start)
        self._kern[worker] = 0.0
        try:
            committed = self._run_task(t, worker)
        finally:
            self._inflight.pop(t, None)
        end = time.perf_counter() - self.t0
        dur = self._kern[worker] or (end - start)
        self._record_health(worker, self.health.observe(
            f"cpu{worker}", self._health_key(t), dur, end))
        if committed is False:
            self._record_hedge(worker, "cancel", t, f"cpu{worker}", end,
                               self._hedged.get(t, ""))
            return False
        self._last_done[worker] = end
        if self.scheduler.wants_durations:
            self.scheduler.on_duration(t, dur)
        if self.trace is not None:
            self._trace_rows[worker].append((t, start, end))
        if t in self._hedged:
            self._record_hedge(worker, "win", t, f"cpu{worker}", end,
                               self._hedged[t])
        return True

    # -- bookkeeping ---------------------------------------------------
    def _settled(self) -> int:
        """Tasks that will never run again: completed or abandoned.
        Every caller already holds ``self.state``."""
        return self.n_done + len(self.abandoned)  # noqa: RV405

    def _quarantine_locked(self, t: int, exc: BaseException) -> None:
        """Abandon ``t`` and its not-yet-run descendants (state held)."""
        self.quarantined[t] = exc
        stack = [t]
        while stack:
            u = stack.pop()
            if u in self.abandoned:
                continue
            self.abandoned.add(u)
            for s in self.dag.successors(u):
                if not self.done[s]:
                    stack.append(int(s))

    def _wake_all(self) -> None:
        for ev in self.wakeups:
            ev.set()

    def _wake(self, hint: int, me: int) -> None:
        """Wake the routed worker, or any parked one for shared pools."""
        if 0 <= hint < self.n_workers:
            if hint != me:
                self.wakeups[hint].set()
                if self._sync_rows is not None:
                    now = self._now()
                    self._sync("wake", me, f"worker{hint}", -1, now, now)
            return
        self._wake_any(me)

    def _wake_any(self, me: int) -> None:
        for w in range(self.n_workers):
            if w != me and not self.wakeups[w].is_set():
                self.wakeups[w].set()
                if self._sync_rows is not None:
                    now = self._now()
                    self._sync("wake", me, f"worker{w}", -1, now, now)
                return

    def _on_success(self, t: int, worker: int) -> None:
        released: list[int] = []
        with self.state:
            self.n_done += 1
            self.done[t] = True
            for s in self.dag.successors(t):
                self.deps_left[s] -= 1
                if self.deps_left[s] == 0 and s not in self.abandoned:
                    released.append(int(s))
            terminal = self._settled() >= self.dag.n_tasks
            # Publish timestamp is taken *inside* the state lock: the
            # lock serializes completions, so every predecessor's
            # publish time provably precedes the successor-releasing
            # decrement — the C702 ordering the auditor re-checks.
            pub = self._now() if self._sync_rows is not None else 0.0
        if self._sync_rows is not None:
            self._sync("publish", worker, "pool", t, pub, pub)
        # Affinity bookkeeping first, so freshly released successors
        # route to the worker whose cache just touched the panel.
        self.scheduler.on_complete(t, worker)
        if terminal:
            self._wake_all()
            return
        # This worker keeps one released task for itself (it pops next);
        # each task routed elsewhere wakes its target, and each *surplus*
        # local/shared task offers a parked peer the chance to steal it.
        surplus = len(released) - 1
        for s in released:
            hint = self._push(s, worker)
            if 0 <= hint < self.n_workers and hint != worker:
                self.wakeups[hint].set()
                if self._sync_rows is not None:
                    now = self._now()
                    self._sync("wake", worker, f"worker{hint}", s, now, now)
            elif surplus > 0:
                self._wake_any(worker)
                surplus -= 1

    def _on_failure(self, t: int, worker: int, exc: BaseException) -> None:
        cblk = int(self.dag.cblk[t])
        with self.state:
            att = self.attempts.get(t, 0) + 1
            self.attempts[t] = att
            now = time.perf_counter() - self.t0
            retry = att <= self.max_retries
            if self.trace is not None:
                self.trace.record_fault(
                    "task-error", t, cblk, f"cpu{worker}", now, now, att,
                )
                if retry:
                    self.trace.record_recovery(
                        "requeue", t, cblk, f"cpu{worker}", now, att,
                    )
            if not retry:
                self._quarantine_locked(t, exc)
        if retry:
            hint = self._push(t, worker)
            self._wake(hint, worker)
        else:
            self._wake_all()

    # -- the worker loop -----------------------------------------------
    def _park(self, worker: int) -> None:
        ev = self.wakeups[worker]
        ev.clear()
        # Recheck *after* clearing: a push that landed before the clear
        # is visible here; one that lands after will set the event.
        if self.scheduler.has_work() or self.aborted:
            return
        with self.state:
            if self._settled() >= self.dag.n_tasks:
                return
        if self._sync_rows is None:
            ev.wait(timeout=_PARK_TIMEOUT_S)
        else:
            t_park = self._now()
            ev.wait(timeout=_PARK_TIMEOUT_S)
            self._sync("park", worker, f"worker{worker}", -1,
                       t_park, self._now())

    def _process(self, t: int, worker: int) -> None:
        """Run one popped task through execute/success/failure.

        Subclass hook: the factorization override batches same-target
        updates here (fan-in accumulation) before completing them.
        """
        try:
            committed = self._execute(t, worker)
        except BaseException as exc:
            if self.health is not None and t in self._committed:
                # A hedge duplicate already committed and completed this
                # task; the primary's late failure is absorbed.
                return
            self._on_failure(t, worker, exc)
            return
        if committed is False:
            return  # lost the hedge race; the winner published it
        self._on_success(t, worker)

    def _worker(self, worker: int) -> None:
        while True:
            with self.state:
                if self.aborted or self._settled() >= self.dag.n_tasks:
                    return
            if self.health is not None \
                    and self.health.rank(f"cpu{worker}") == 2:
                # Quarantined: take no work (the R703 contract).  Park
                # on the usual timeout and tick the monitor so the
                # dwell timer can release us into probation; peers keep
                # stealing whatever sits in our deque.
                self._record_health(
                    worker, self.health.tick(self._now()))
                ev = self.wakeups[worker]
                ev.clear()
                ev.wait(timeout=_PARK_TIMEOUT_S)
                continue
            t = self.scheduler.pop(worker)
            if t is None:
                if self.health is not None and self._try_hedge(worker):
                    continue
                self._park(worker)
                continue
            with self.state:
                if t in self.abandoned:
                    continue
            self._process(t, worker)

    # -- speculative (hedged) re-execution -------------------------------
    def _try_hedge(self, worker: int) -> bool:
        """Idle healthy worker scans the in-flight pool for a task stuck
        on a suspect-or-worse worker past its hedge threshold; runs the
        duplicate inline when it claims one.  Returns True if it did."""
        h = self.health
        if not h.policy.hedge or h.rank(f"cpu{worker}") != 0:
            return False
        now = self._now()
        with self.state:
            inflight = list(self._inflight.items())
        for t, (pw, pstart) in inflight:
            if pw == worker or t in self._hedged or t in self._committed:
                continue
            if not self._hedgeable(t):
                continue
            after = h.hedge_after(self._health_key(t))
            if after is None:
                continue
            age = now - pstart
            if age < after:
                continue
            if h.state(f"cpu{pw}") == "healthy" and age < 2.0 * after:
                # A mild overstay on an unflagged worker is likely
                # queueing noise, but an extreme one is its own
                # evidence: a stuck attempt is overdue regardless of
                # what the EWMA has seen so far (it only updates on
                # *completions*, which is exactly what a stuck task
                # never delivers).
                continue
            with self.state:
                # Claim under the state lock: another idle worker may
                # be scanning the same snapshot.
                if (t in self._hedged or t in self._committed
                        or t not in self._inflight):
                    continue
                self._hedged[t] = f"cpu{pw}"
                self.n_hedges += 1
            self._record_hedge(worker, "launch", t, f"cpu{worker}",
                               self._now(), f"cpu{pw}")
            self._process_hedge(t, worker)
            return True
        return False

    def _process_hedge(self, t: int, worker: int) -> None:
        """Run the speculative duplicate of ``t``; first commit wins.

        Unlike the simulators, a losing wall-clock attempt cannot be
        cancelled mid-kernel — both run to completion and the commit
        gate inside the task body discards the loser's side effects.
        """
        start = self._now()
        self._kern[worker] = 0.0
        try:
            committed = self._run_task(t, worker)
        except BaseException:
            # A duplicate failure is absorbed: the primary attempt is
            # still in flight and completes (or fails) on its own.
            self._record_hedge(worker, "cancel", t, f"cpu{worker}",
                               self._now(), self._hedged.get(t, ""))
            return
        end = self._now()
        dur = self._kern[worker] or (end - start)
        self._record_health(worker, self.health.observe(
            f"cpu{worker}", self._health_key(t), dur, end))
        if committed is False:
            self._record_hedge(worker, "cancel", t, f"cpu{worker}", end,
                               self._hedged.get(t, ""))
            return
        self._last_done[worker] = end
        if self.scheduler.wants_durations:
            self.scheduler.on_duration(t, dur)
        if self.trace is not None:
            self._trace_rows[worker].append((t, start, end))
        self._record_hedge(worker, "win", t, f"cpu{worker}", end,
                           self._hedged[t])
        self._on_success(t, worker)

    # -- diagnostics ---------------------------------------------------
    def _watchdog_message(self) -> str:
        with self.state:
            ready = self.scheduler.snapshot(15)
            pending = np.flatnonzero(~self.done)
            frontier = [
                int(t) for t in pending
                if t not in self.abandoned and self.deps_left[t] == 0
            ]
            blocked = int(
                sum(1 for t in pending if self.deps_left[t] > 0)
            )
            msg = (
                f"threaded {self.phase_label} made no progress for "
                f"{self.watchdog_s}s: "
                f"{self.n_done}/{self.dag.n_tasks} done, "
                f"{len(self.abandoned)} abandoned; "
                f"scheduler {self.scheduler.name!r}; ready queue {ready}; "
                f"{len(frontier)} released-but-unrun task(s) "
                f"{frontier[:15]}; {blocked} task(s) with deps_left > 0"
            )
            if self.health is not None:
                # Which worker is wedged and how long has its in-flight
                # task sat there — the first question a stalled-pool
                # report gets asked.
                now = self._now()
                snap = self.health.snapshot()
                per = ", ".join(
                    f"cpu{w}:{snap[f'cpu{w}'][0]}"
                    f"(ewma={snap[f'cpu{w}'][1]:.2f},"
                    f" last_done={now - self._last_done[w]:.2f}s ago)"
                    for w in range(self.n_workers)
                )
                ages = {
                    t: f"{now - st:.2f}s on cpu{w}"
                    for t, (w, st) in sorted(self._inflight.items())
                }
                msg += (f"; worker health [{per}]; "
                        f"in-flight task ages {ages}")
            return msg

    def _merge_trace(self) -> None:
        if self.trace is None:
            return
        for w in range(self.n_workers):
            for t, start, end in self._trace_rows[w]:
                self.trace.record(t, f"cpu{w}", start, end)
        self._trace_rows = [[] for _ in range(self.n_workers)]
        stamp = getattr(self.scheduler, "model_stamp", None)
        if stamp is not None:
            # Adaptive-model provenance (model version + sample counts);
            # deterministic by contract, so it is safe inside the D8xx
            # fingerprint whitelist and audited by the A9xx pass.
            self.trace.meta["adaptive"] = stamp()
        if self.health is not None:
            for w in range(self.n_workers):
                for (res, src, dst, when, ratio, rsn) in self._health_rows[w]:
                    self.trace.record_health(res, src, dst, when, ratio, rsn)
                for (kind, t, res, when, primary) in self._hedge_rows[w]:
                    self.trace.record_hedge(kind, t, res, when, primary)
            self._health_rows = [[] for _ in range(self.n_workers)]
            self._hedge_rows = [[] for _ in range(self.n_workers)]
            self.trace.meta["health"] = {
                "hedge": bool(self.health.policy.hedge),
                "n_observations": self.health.n_observations,
                "n_transitions": self.health.n_transitions,
                "n_hedges": self.n_hedges,
            }
        if self._sync_rows is not None:
            for rows in self._sync_rows:
                for r in rows:
                    self.trace.record_sync(*r)
            self._sync_rows = [[] for _ in range(self.n_workers + 1)]
            self.scheduler.observer = None
            self._stamp_sync_stats()

    def _stamp_sync_stats(self) -> None:
        """Summarize the merged sync events into ``trace.meta``.

        Counts per kind plus total lock-held/lock-wait seconds — the
        benchmark's tuning signal and the C707 provenance anchor: the
        concurrency auditor recomputes these from the events and a
        mismatch means the trace was edited after the run.
        """
        assert self.trace is not None
        counts: dict[str, int] = {}
        held = wait = 0.0
        for e in self.trace.sync_events:
            counts[e.kind] = counts.get(e.kind, 0) + 1
            if e.kind == "lock":
                held += e.duration
                wait += e.wait_s
        self.trace.meta["sync_stats"] = {
            "counts": counts,
            "lock_held_s": held,
            "lock_wait_s": wait,
        }

    # -- driver --------------------------------------------------------
    def run(self) -> None:
        threads = [
            threading.Thread(target=self._worker, args=(w,), daemon=True)
            for w in range(self.n_workers)
        ]
        for th in threads:
            th.start()
        try:
            if self.watchdog_s is None:
                for th in threads:
                    th.join()
            else:
                deadline = time.monotonic() + self.watchdog_s
                last_progress = -1
                while any(th.is_alive() for th in threads):
                    for th in threads:
                        th.join(timeout=0.05)
                    with self.state:
                        progress = self._settled()
                    if progress != last_progress:
                        last_progress = progress
                        deadline = time.monotonic() + self.watchdog_s
                    elif time.monotonic() > deadline:
                        msg = self._watchdog_message()
                        with self.state:
                            self.aborted = True
                        self._wake_all()
                        raise RuntimeError(msg)
        finally:
            # Only merge once every worker is gone — the buffers are
            # written lock-free by their owning threads.
            if all(not th.is_alive() for th in threads):
                self._merge_trace()
        if self.quarantined:
            # Everything independent of the failures completed; now
            # surface the first failure to the caller.
            raise next(iter(self.quarantined.values()))
        if self.n_done != self.dag.n_tasks:
            raise RuntimeError(
                f"threaded {self.phase_label} stalled"
            )


class _ThreadedRun(_PoolRun):
    """One threaded factorization (see :class:`_PoolRun` for hardening).

    Update tasks are two-phase: the sparse GEMM runs lock-free against
    the already-factorized source panel, then the scatter-add takes the
    target-panel mutex.  With ``workspace=False`` the direct-scatter
    GPU-twin kernel has no separable compute half, so the whole kernel
    runs under the mutex (the legacy discipline).
    """

    phase_label = "factorization"

    #: Bound on a fan-in batch (first task + drained extras).  Small:
    #: a batch delays its members' completion notifications until the
    #: flush, so unbounded draining would serialize the frontier.
    batch_limit = 8

    def __init__(self, factor: NumericFactor, dag, n_workers: int,
                 workspace: bool, trace: Optional[ExecutionTrace],
                 max_retries: int = 0,
                 watchdog_s: float | None = None,
                 scheduler: ThreadScheduler | str = "ws",
                 accumulate: bool = False,
                 record_sync: bool = False,
                 faults: Optional[FaultModel] = None,
                 health: Optional[HealthPolicy] = None) -> None:
        # Accumulation state first: the base __init__ seeds the ready
        # queue through the _push hook below, which consults it.
        self.accumulate = accumulate
        if accumulate:
            from repro.kernels.accumulate import FanInAccumulator

            self._accum = [FanInAccumulator() for _ in range(n_workers)]
            # Per-target count of *queued* ready updates, maintained by
            # the _push/_process hooks.  Best-effort (GIL-racy +=/-=
            # drift at worst skips a batch or wastes one scan): its job
            # is to keep the pop_same_target deque scans off the hot
            # path when no sibling update is queued — without it every
            # update pays a full victim sweep that mostly finds nothing.
            self._ready_upd = [0] * dag.symbol.n_cblk
        # The task bodies need these before the base __init__ can seed
        # ready sources (a source could in principle be processed by a
        # racing worker, but workers only start in run()).
        self.workspace = workspace
        super().__init__(dag, n_workers, trace, scheduler,
                         max_retries=max_retries, watchdog_s=watchdog_s,
                         record_sync=record_sync, faults=faults,
                         health=health)
        self.factor = factor
        self.panel_locks = [
            threading.Lock() for _ in range(dag.symbol.n_cblk)
        ]
        from repro.kernels.compiled import HAVE_NUMBA

        # Compiled backend + workspace mode (no batching): updates run
        # the *fused* compute+scatter jit kernel under the target mutex;
        # the jit region drops the GIL, so fused updates to different
        # panels still overlap.  With fan-in accumulation the two-phase
        # split stays (the compiled merge_add runs in load()).
        self._fused = (
            getattr(factor, "kernels", "numpy") == "compiled" and HAVE_NUMBA
        )

    def _task_part(self, t: int):
        """Row-block bounds of a 2D-split update task (or ``None``)."""
        row_lo = self.dag.row_lo
        if row_lo is None:
            return None
        lo = int(row_lo[t])
        if lo < 0:
            return None
        return lo, int(self.dag.row_hi[t])

    def _push(self, t: int, worker: int) -> int:
        if self.accumulate and int(self.dag.kind[t]) == int(TaskKind.UPDATE):
            # Best-effort guard counter; a GIL-racy lost update only
            # skips a batch or wastes a scan.  noqa: RV401
            self._ready_upd[int(self.dag.target[t])] += 1  # noqa: RV401
        return super()._push(t, worker)

    def _locked_scatter(self, t: int, tgt: int, worker: int,
                        body, obj: Optional[str] = None) -> None:
        """Run ``body()`` under panel ``tgt``'s mutex, recording the
        hold window (acquire wait, acquire, release) when sync tracing
        is on.  The window is measured *inside* the lock, so measured
        windows on one panel are disjoint exactly when the real holds
        are — the C701 mutual-exclusion check stays sound."""
        if self._sync_rows is None:
            with self.panel_locks[tgt]:
                body()
            return
        t_req = self._now()
        with self.panel_locks[tgt]:
            t_acq = self._now()
            body()
            t_rel = self._now()
        self._sync("lock", worker, obj or f"panel{tgt}", t,
                   t_acq, t_rel, wait_s=t_acq - t_req)

    def _hedgeable(self, t: int) -> bool:
        """Only workspace-mode updates: their lock-free GEMM runs into
        a private buffer and the scatter commits under the target-panel
        mutex, so two concurrent attempts are race-free and the first
        through the gate wins.  Panel tasks (and ``workspace=False``
        updates) mutate shared panels in place — duplicating one would
        be a data race, so they are never hedged."""
        return (self.workspace
                and TaskKind(int(self.dag.kind[t])) == TaskKind.UPDATE)

    def _run_task(self, t: int, worker: int) -> Optional[bool]:
        dag = self.dag
        kind = TaskKind(int(dag.kind[t]))
        if kind != TaskKind.UPDATE:
            if self.faults is None and self.health is None:
                panel_factorize(self.factor, int(dag.cblk[t]))
            else:
                k0 = time.perf_counter()
                panel_factorize(self.factor, int(dag.cblk[t]))
                self._inject(t, worker, time.perf_counter() - k0)
                if self.health is not None:
                    # Stamped after the injected sleep: the slowdown is
                    # exactly what the monitor must see.
                    self._kern[worker] = time.perf_counter() - k0
            return None
        src, tgt = int(dag.cblk[t]), int(dag.target[t])
        part = self._task_part(t)
        # Blocking acquire is deadlock-free: a worker holds at most one
        # panel lock and never waits on anything else while holding it.
        if self.workspace and self._fused:
            # Fused compiled kernel: compute+scatter in one GIL-free jit
            # call, entirely under the target mutex.  Hedged attempts
            # serialize on that mutex, so the commit gate stays atomic.
            kern = [0.0]
            won = [True]

            def fused_body():
                if self.health is not None and t in self._committed:
                    won[0] = False
                    return
                b0 = time.perf_counter()
                panel_update(self.factor, src, tgt, part=part)
                kern[0] = time.perf_counter() - b0
                if self.health is not None:
                    self._committed.add(t)

            self._locked_scatter(t, tgt, worker, fused_body)
            if self.faults is not None or self.health is not None:
                i0 = time.perf_counter()
                self._inject(t, worker, kern[0])
                if self.health is not None:
                    self._kern[worker] = (
                        kern[0] + (time.perf_counter() - i0)
                    )
            return won[0] if self.health is not None else None
        if self.workspace:
            k0 = time.perf_counter()
            parts = panel_update_compute(self.factor, src, tgt, part=part)
            # The injected slowdown lands *between* the lock-free
            # compute and the locked scatter: that is where a limping
            # core loses the commit race to a healthy hedge duplicate.
            self._inject(t, worker, time.perf_counter() - k0)
            if self.health is not None:
                # Kernel time excludes the scatter below: its mutex
                # wait is queueing on a peer, not this worker's speed.
                self._kern[worker] = time.perf_counter() - k0
            if parts is not None:
                if self.health is None:
                    self._locked_scatter(
                        t, tgt, worker,
                        lambda: panel_update_scatter(
                            self.factor, tgt, parts),
                    )
                    return None
                # Idempotent-commit gate: both attempts of a hedged
                # task serialize on the same target-panel mutex, so
                # check-scatter-mark is atomic w.r.t. the other
                # attempt.  The mark lands *after* the scatter: a
                # scatter that raises leaves the gate open for the
                # retry path.
                won = [True]

                def body():
                    if t in self._committed:
                        won[0] = False
                        return
                    panel_update_scatter(self.factor, tgt, parts)
                    self._committed.add(t)

                self._locked_scatter(t, tgt, worker, body)
                return won[0]
            if self.health is not None:
                # No facing contribution: nothing to scatter, so the
                # gate lives under the state lock instead of a panel
                # mutex (both attempts deterministically reach here).
                with self.state:
                    if t in self._committed:
                        return False
                    self._committed.add(t)
            if self._sync_rows is not None:
                # No facing contribution: nothing was scattered, so no
                # lock was (or needed to be) taken — exempt from C703.
                now = self._now()
                self._sync("noop", worker, f"panel{tgt}", t, now, now)
            return None
        if self.faults is None and self.health is None:
            self._locked_scatter(
                t, tgt, worker,
                lambda: panel_update(self.factor, src, tgt,
                                     workspace=False, part=part),
            )
        else:
            kern = [0.0]

            def body():
                b0 = time.perf_counter()
                panel_update(self.factor, src, tgt, workspace=False,
                             part=part)
                kern[0] = time.perf_counter() - b0

            self._locked_scatter(t, tgt, worker, body)
            # Outside the mutex: the slowdown models a slow core, not
            # a longer critical section.  The in-lock measurement
            # excludes acquire wait for the same reason.
            i0 = time.perf_counter()
            self._inject(t, worker, kern[0])
            if self.health is not None:
                self._kern[worker] = kern[0] + (time.perf_counter() - i0)
        return None

    # -- fan-in accumulation -------------------------------------------
    def _process(self, t: int, worker: int) -> None:
        if (
            not self.accumulate
            or not self.workspace
            or TaskKind(int(self.dag.kind[t])) != TaskKind.UPDATE
        ):
            super()._process(t, worker)
            return
        self._process_update_batch(t, worker)

    def _process_update_batch(self, first: int, worker: int) -> None:
        """Batch ready same-target updates behind one mutex acquisition.

        The popped update's target panel is probed for further *ready*
        updates on this worker's own queue (``pop_same_target``); their
        GEMMs all run lock-free, the contributions merge in the worker's
        accumulator, and one locked slab subtraction commits the batch.
        Completions are only published after the flush — a batched
        update's successors (the target's panel task) must not start
        while its contribution sits in the accumulator.
        """
        dag = self.dag
        tgt = int(dag.target[first])
        self._ready_upd[tgt] -= 1  # `first` left the queue  # noqa: RV401
        batch = [first]
        while len(batch) < self.batch_limit and self._ready_upd[tgt] > 0:
            extra = self.scheduler.pop_same_target(worker, tgt)
            if extra is None:
                break
            self._ready_upd[tgt] -= 1  # noqa: RV401
            with self.state:
                if extra in self.abandoned:
                    continue
            batch.append(extra)

        computed: list[list] = []  # [task, parts, start, end]
        for u in batch:
            start = time.perf_counter() - self.t0
            try:
                parts = panel_update_compute(
                    self.factor, int(dag.cblk[u]), tgt,
                    part=self._task_part(u),
                )
            except BaseException as exc:
                self._on_failure(u, worker, exc)
                continue
            # Injected slowdowns apply per member (a limping core is
            # slow on every kernel it runs).  Batched members are never
            # hedged: they are not registered in-flight, so the only
            # commit is the single locked flush below.
            self._inject(u, worker,
                         time.perf_counter() - self.t0 - start)
            computed.append([u, parts, start, time.perf_counter() - self.t0])

        live = [c for c in computed if c[1] is not None]
        if len(live) == 1:
            self._locked_scatter(
                live[0][0], tgt, worker,
                lambda: panel_update_scatter(self.factor, tgt, live[0][1]),
            )
        elif live:
            acc = self._accum[worker]
            acc.load(self.factor, tgt, [c[1] for c in live])
            if self._sync_rows is None:
                with self.panel_locks[tgt]:
                    acc.apply(self.factor, tgt)
            else:
                t_req = self._now()
                with self.panel_locks[tgt]:
                    t_acq = self._now()
                    acc.apply(self.factor, tgt)
                    t_rel = self._now()
                # One lock window for the whole batch, plus one "flush"
                # event per member sharing its coordinates: the C7xx
                # auditor needs to see that every batched contribution
                # committed inside a mutex hold, and C704 needs each
                # member's publish to postdate this window's end.
                self._sync("lock", worker, f"panel{tgt}", live[-1][0],
                           t_acq, t_rel, wait_s=t_acq - t_req,
                           n=len(live))
                for c in live:
                    self._sync("flush", worker, f"panel{tgt}", c[0],
                               t_acq, t_rel, n=len(live))
        if self._sync_rows is not None:
            for c in computed:
                if c[1] is None:
                    self._sync("noop", worker, f"panel{tgt}", c[0],
                               c[3], c[3])
        if live:
            # The flush belongs to the batch's last task's window, so
            # per-resource trace rows stay sequential and disjoint.
            live[-1][3] = time.perf_counter() - self.t0

        for u, _parts, start, end in computed:
            if self.trace is not None:
                self._trace_rows[worker].append((u, start, end))
            if self.scheduler.wants_durations:
                self.scheduler.on_duration(u, end - start)
            if self.health is not None:
                self._last_done[worker] = end
                self._record_health(worker, self.health.observe(
                    f"cpu{worker}", self._health_key(u), end - start, end))
            self._on_success(u, worker)


class _ThreadedSolve:
    """Task bodies for the parallel triangular solve.

    Executes the DAG of :func:`repro.dag.build_solve_dag` for real:
    forward panel solves and GEMV slices, the LDLᵀ diagonal scaling
    folded into the start of each backward panel, then the backward
    sweep.  Shared-vector regions are protected by the same mutex
    namespaces the DAG declares (forward: the facing panel; backward:
    the source panel).  The forward/backward split comes from the DAG's
    explicit ``solve_backward`` field, not from task-index arithmetic.
    """

    def __init__(self, factor: NumericFactor, x: np.ndarray) -> None:
        import scipy.linalg as sla

        self.sla = sla
        self.factor = factor
        self.x = x
        # Backward contributions accumulate separately so they never
        # interleave with forward reads of the same panel columns.
        self.acc = np.zeros_like(x)
        self.sym = factor.symbol
        self.K = self.sym.n_cblk

    def run_task(self, dag, task: int) -> None:
        from repro.kernels.panel import update_slice

        sla, factor, sym, x = self.sla, self.factor, self.sym, self.x
        src, tgt = int(dag.cblk[task]), int(dag.target[task])
        kind = TaskKind(int(dag.kind[task]))
        f, l = int(sym.cblk_ptr[src]), int(sym.cblk_ptr[src + 1])
        w = l - f
        panel = factor.L[src]
        backward = bool(dag.solve_backward[task])

        if kind != TaskKind.UPDATE:
            diag = panel[:w, :w]
            unit = factor.factotype in ("ldlt", "lu")
            if not backward:
                x[f:l] = sla.solve_triangular(
                    diag, x[f:l], lower=True, unit_diagonal=unit,
                    check_finite=False,
                )
                return
            rhs = x[f:l]
            if factor.factotype == "ldlt":
                rhs = rhs / factor.D[src]
            rhs = rhs - self.acc[f:l]
            if factor.factotype == "lu":
                x[f:l] = sla.solve_triangular(
                    diag, rhs, lower=False, check_finite=False
                )
            else:
                x[f:l] = sla.solve_triangular(
                    diag, rhs, lower=True, unit_diagonal=unit,
                    trans="T", check_finite=False,
                )
            return

        i0, i1, rk = update_slice(factor, src, tgt)
        rows = rk[i0:i1]
        if not backward:
            x[rows] -= panel[w + i0: w + i1, :] @ x[f:l]
        else:
            block = (
                factor.U[src][w + i0: w + i1, :]
                if factor.factotype == "lu"
                else panel[w + i0: w + i1, :]
            )
            self.acc[f:l] += block.T @ x[rows]


class _ThreadedSolveRun(_PoolRun):
    """One threaded triangular solve on the shared pool engine.

    Solve tasks mutate the right-hand-side vector in place, so bodies
    are *not* retryable (``max_retries`` is pinned to 0); the watchdog
    and quarantine machinery are inherited unchanged — a wedged solve
    pool now raises the same named diagnostic as the factorization
    instead of joining forever.
    """

    phase_label = "solve"

    def __init__(self, factor: NumericFactor, x: np.ndarray, dag,
                 n_workers: int,
                 trace: Optional[ExecutionTrace] = None,
                 watchdog_s: float | None = None,
                 scheduler: ThreadScheduler | str = "fifo",
                 record_sync: bool = False) -> None:
        super().__init__(dag, n_workers, trace, scheduler,
                         max_retries=0, watchdog_s=watchdog_s,
                         record_sync=record_sync)
        self.body = _ThreadedSolve(factor, x)
        self.mutex_locks = [
            threading.Lock() for _ in range(2 * factor.symbol.n_cblk)
        ]

    def _run_task(self, t: int, worker: int) -> None:
        grp = int(self.dag.mutex[t])
        if grp < 0:
            self.body.run_task(self.dag, t)
            return
        if self._sync_rows is None:
            with self.mutex_locks[grp]:
                self.body.run_task(self.dag, t)
            return
        t_req = self._now()
        with self.mutex_locks[grp]:
            t_acq = self._now()
            self.body.run_task(self.dag, t)
            t_rel = self._now()
        self._sync("lock", worker, f"mutex{grp}", t, t_acq, t_rel,
                   wait_s=t_acq - t_req)


def solve_threaded(
    factor: NumericFactor,
    b: np.ndarray,
    *,
    n_workers: int = 4,
    watchdog_s: float | None = None,
    scheduler: ThreadScheduler | str = "fifo",
    trace: Optional[ExecutionTrace] = None,
    record_sync: bool = False,
) -> np.ndarray:
    """Parallel triangular solve of the factored system on threads.

    Equivalent to :func:`repro.core.triangular.solve_factored` (the tests
    assert agreement to roundoff) but executes the solve-phase DAG on a
    worker pool.  ``watchdog_s`` turns a wedged pool into a diagnostic
    ``RuntimeError`` instead of an unbounded ``join()``; ``scheduler``
    picks the ready-queue policy (solve tasks are tiny, so the default
    stays the cheap global FIFO).
    """
    from repro.dag.solve_builder import build_solve_dag

    x = np.array(b, dtype=factor.dtype, copy=True)
    dag = build_solve_dag(factor.symbol, factor.factotype, dtype=factor.dtype)
    run = _ThreadedSolveRun(factor, x, dag, n_workers, trace=trace,
                            watchdog_s=watchdog_s, scheduler=scheduler,
                            record_sync=record_sync)
    run.run()
    return x


def factorize_threaded(
    symbol: SymbolMatrix,
    matrix: SparseMatrixCSC,
    factotype: str,
    *,
    n_workers: int = 4,
    workspace: bool = True,
    dtype=None,
    trace: Optional[ExecutionTrace] = None,
    max_retries: int = 0,
    watchdog_s: float | None = None,
    scheduler: ThreadScheduler | str = "ws",
    pivot_threshold: float = 0.0,
    index_cache: bool = True,
    accumulate: bool = False,
    dl_buffer: bool = False,
    record_sync: bool = False,
    faults: Optional[FaultModel] = None,
    health: Optional[HealthPolicy] = None,
    kernels: str = "numpy",
    split_rows: int | None = None,
) -> NumericFactor:
    """Factorize on a thread pool; returns the :class:`NumericFactor`.

    The hot-path optimization toggles mirror the sequential driver's:
    ``index_cache`` reuses the symbol's precomputed couple scatter maps
    (bit-identical numerics), ``dl_buffer`` keeps the persistent LDLᵀ
    ``DLᵀ`` buffer (bit-identical numerics, per-update ``L·D``
    recompute removed — paper §V-A), and ``accumulate`` merges ready
    same-target updates in per-worker fan-in accumulators so the target
    mutex is taken once per batch (changes the floating-point reduction
    order like any cross-thread reordering, hence opt-in; results agree
    with the sequential factor to roundoff).  The effective settings
    and the cache/accumulator counters are stamped into ``trace.meta``.

    ``kernels`` selects the numeric backend: ``"numpy"`` (the
    bit-identity reference — traces and factors are unchanged from the
    pre-toggle code) or ``"compiled"`` (numba-jit fused update kernel +
    compiled fan-in merge and assemble gather,
    :mod:`repro.kernels.compiled`; gracefully degrades to numpy when
    numba is absent).  Both the requested and the *effective* backend
    are stamped into ``trace.meta``.  ``split_rows`` enables tall-panel
    2D row-block splitting of the update DAG
    (``build_dag(split_rows=...)``): couples taller than the threshold
    become several independent update tasks that share the target's
    mutex but parallelize their GEMMs.

    ``scheduler`` selects the ready-queue policy by registry name
    (``"ws"`` work stealing — the default, ``"priority"`` critical-path
    heap, ``"affinity"`` last-panel cache reuse, ``"fifo"`` the legacy
    shared queue) or accepts a :class:`~repro.runtime.scheduling.\
ThreadScheduler` instance; the choice is stamped into ``trace.meta``.

    Pass an :class:`ExecutionTrace` to collect per-task timings (rows
    are buffered per worker, so the overhead stays off the hot path).
    ``max_retries`` re-runs a raising task body that many times before
    quarantining it (see :class:`_PoolRun`); ``watchdog_s`` turns a
    wedged pool into a diagnostic ``RuntimeError`` instead of an
    unbounded ``join()``.  ``pivot_threshold`` > 0 enables the same
    static-pivot perturbation as the sequential driver (the monitor's
    counter is thread-safe).

    ``record_sync=True`` (requires a trace) additionally records
    first-class :class:`~repro.runtime.tracing.SyncEvent` rows — panel
    mutex hold windows, worker park/wake, steal probes, accumulator
    flushes, completion publishes — that the C7xx concurrency auditor
    (:func:`repro.verify.concurrency.verify_concurrency`) replays to
    prove the run race-free.  Off (the default) the instrumentation is
    a dead branch: no clock reads, and the produced trace is
    bit-identical to an uninstrumented run's.

    ``faults`` injects *timing-only* faults into the wall-clock run:
    task-pinned stragglers and persistent ``limplock`` windows become
    proportional sleeps between a task's compute and its commit, so
    numerics stay bitwise identical to a fault-free run while the
    schedule degrades for real.  ``health`` arms the
    :class:`~repro.resilience.health.HealthMonitor`: per-worker EWMA
    slowdown detection against learned per-(kernel, size-bucket)
    expectations, degradation-aware scheduling (degraded workers stop
    stealing, quarantined workers stop dispatching), and — with
    ``health.hedge`` — speculative re-execution of workspace-mode
    updates stuck on suspect workers, raced through an idempotent
    commit gate (exactly-once: the R701 contract).  Both default off;
    when off every hook is a dead ``is None`` branch.
    """
    from repro.kernels.compiled import resolve_kernels

    effective_kernels = resolve_kernels(kernels)
    factor = NumericFactor.assemble(
        symbol, matrix, factotype, dtype=dtype, kernels=effective_kernels
    )
    factor.kernels = effective_kernels
    if index_cache:
        from repro.kernels.indexcache import get_couple_cache

        factor.index_cache = get_couple_cache(symbol)
    if dl_buffer:
        factor.enable_dl_buffer()
    if pivot_threshold > 0.0:
        from repro.kernels.dense import PivotMonitor

        factor.pivot_monitor = PivotMonitor(pivot_threshold)
    dag = build_dag(
        symbol, factotype, granularity="2d", dtype=factor.dtype,
        split_rows=split_rows,
    )
    run = _ThreadedRun(factor, dag, n_workers, workspace, trace,
                       max_retries=max_retries, watchdog_s=watchdog_s,
                       scheduler=scheduler, accumulate=accumulate,
                       record_sync=record_sync, faults=faults,
                       health=health)
    run.run()
    if trace is not None:
        trace.meta["index_cache"] = bool(index_cache)
        trace.meta["accumulate"] = bool(accumulate)
        trace.meta["dl_buffer"] = bool(factor.dl_buffer)
        # The *effective* backend (what actually ran) plus the request:
        # a trace from a numba-less host honestly says "numpy" even when
        # kernels="compiled" was asked for.
        trace.meta["kernels"] = effective_kernels
        trace.meta["kernels_requested"] = kernels
        if split_rows is not None:
            trace.meta["split_rows"] = int(split_rows)
        if factor.index_cache is not None:
            trace.meta["index_cache_stats"] = factor.index_cache.stats()
        if accumulate:
            agg: dict[str, int] = {}
            for acc in run._accum:
                for key, val in acc.stats().items():
                    agg[key] = agg.get(key, 0) + val
            trace.meta["accumulate_stats"] = agg
    return factor
