"""Real parallel execution of the factorization DAG on Python threads.

NumPy's BLAS kernels release the GIL, so panel factorizations and GEMM
updates genuinely overlap across worker threads.  Dependency management
mirrors the simulator: a shared ready deque, per-panel mutexes for the
in-out update access, and completion-driven release of successors.

This engine is the correctness twin of the simulated runtimes: it runs
the same DAG with the same kernels and must produce bit-for-bit the same
factor as the sequential driver (floating-point reduction order inside a
panel is identical; only the inter-panel update order varies, which
changes results within roundoff — the tests bound the difference).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Optional

import numpy as np

from repro.core.factor import NumericFactor
from repro.dag.builder import build_dag
from repro.dag.tasks import TaskKind
from repro.kernels.panel import panel_factorize, panel_update
from repro.runtime.tracing import ExecutionTrace
from repro.sparse.csc import SparseMatrixCSC
from repro.symbolic.structures import SymbolMatrix

__all__ = ["factorize_threaded", "solve_threaded"]


class _ThreadedRun:
    """One threaded factorization, hardened against task failure.

    * a task body that raises is retried up to ``max_retries`` times
      (each failed attempt lands in the trace as a ``"task-error"``
      fault with a ``"requeue"`` recovery);
    * past the budget the task is *quarantined* — its exception is kept,
      its not-yet-run descendants are abandoned, and every independent
      task still executes (no whole-run abort).  ``run()`` re-raises the
      first quarantined exception once the rest of the DAG drained;
    * ``watchdog_s`` bounds the wait for progress: instead of joining
      forever on a wedged pool, ``run()`` raises a diagnostic naming the
      ready queue and the blocked frontier.

    NOTE: retrying is only sound for task bodies that fail *before*
    mutating their target panel (argument validation, resource errors).
    A partially applied update is not re-runnable; production runtimes
    checkpoint the panel first, which an in-memory engine cannot.
    """

    def __init__(self, factor: NumericFactor, dag, n_workers: int,
                 workspace: bool, trace: Optional[ExecutionTrace],
                 max_retries: int = 0,
                 watchdog_s: float | None = None) -> None:
        self.factor = factor
        self.dag = dag
        self.n_workers = n_workers
        self.workspace = workspace
        self.trace = trace
        self.max_retries = max_retries
        self.watchdog_s = watchdog_s
        self.deps_left = dag.n_deps.copy()
        self.ready: deque[int] = deque(int(t) for t in dag.sources())
        self.n_done = 0
        self.done = np.zeros(dag.n_tasks, dtype=bool)
        self.cv = threading.Condition()
        self.panel_locks = [
            threading.Lock() for _ in range(dag.symbol.n_cblk)
        ]
        self.attempts: dict[int, int] = {}
        self.quarantined: dict[int, BaseException] = {}
        self.abandoned: set[int] = set()
        self.aborted = False
        self.t0 = time.perf_counter()

    # ------------------------------------------------------------------
    def _execute(self, t: int, worker: int) -> None:
        dag = self.dag
        kind = TaskKind(int(dag.kind[t]))
        start = time.perf_counter() - self.t0
        if kind == TaskKind.UPDATE:
            tgt = int(dag.target[t])
            # Blocking acquire is deadlock-free: a worker holds at most
            # one panel lock and never waits on anything else while
            # holding it.
            with self.panel_locks[tgt]:
                panel_update(
                    self.factor, int(dag.cblk[t]), tgt,
                    workspace=self.workspace,
                )
        else:
            panel_factorize(self.factor, int(dag.cblk[t]))
        if self.trace is not None:
            end = time.perf_counter() - self.t0
            with self.cv:
                self.trace.record(t, f"cpu{worker}", start, end)

    def _settled(self) -> int:
        """Tasks that will never run again: completed or abandoned."""
        return self.n_done + len(self.abandoned)

    def _quarantine(self, t: int, exc: BaseException) -> None:
        """Abandon ``t`` and its not-yet-run descendants (cv held)."""
        self.quarantined[t] = exc
        stack = [t]
        while stack:
            u = stack.pop()
            if u in self.abandoned:
                continue
            self.abandoned.add(u)
            for s in self.dag.successors(u):
                if not self.done[s]:
                    stack.append(int(s))
        self.cv.notify_all()

    def _worker(self, worker: int) -> None:
        while True:
            with self.cv:
                while not self.ready \
                        and self._settled() < self.dag.n_tasks \
                        and not self.aborted:
                    self.cv.wait()
                if self.aborted or self._settled() >= self.dag.n_tasks:
                    return
                t = self.ready.popleft()
                if t in self.abandoned:
                    continue
            try:
                self._execute(t, worker)
            except BaseException as exc:
                with self.cv:
                    att = self.attempts.get(t, 0) + 1
                    self.attempts[t] = att
                    now = time.perf_counter() - self.t0
                    if self.trace is not None:
                        self.trace.record_fault(
                            "task-error", t, int(self.dag.cblk[t]),
                            f"cpu{worker}", now, now, att,
                        )
                    if att > self.max_retries:
                        self._quarantine(t, exc)
                    else:
                        if self.trace is not None:
                            self.trace.record_recovery(
                                "requeue", t, int(self.dag.cblk[t]),
                                f"cpu{worker}", now, att,
                            )
                        self.ready.append(t)
                        self.cv.notify_all()
                continue
            with self.cv:
                self.n_done += 1
                self.done[t] = True
                for s in self.dag.successors(t):
                    self.deps_left[s] -= 1
                    if self.deps_left[s] == 0 and s not in self.abandoned:
                        self.ready.append(int(s))
                self.cv.notify_all()

    def _watchdog_message(self) -> str:
        with self.cv:
            ready = list(self.ready)[:15]
            pending = np.flatnonzero(~self.done)
            frontier = [
                int(t) for t in pending
                if t not in self.abandoned and self.deps_left[t] == 0
            ]
            blocked = int(
                sum(1 for t in pending if self.deps_left[t] > 0)
            )
            return (
                f"threaded run made no progress for {self.watchdog_s}s: "
                f"{self.n_done}/{self.dag.n_tasks} done, "
                f"{len(self.abandoned)} abandoned; ready queue {ready}; "
                f"{len(frontier)} released-but-unrun task(s) "
                f"{frontier[:15]}; {blocked} task(s) with deps_left > 0"
            )

    def run(self) -> None:
        threads = [
            threading.Thread(target=self._worker, args=(w,), daemon=True)
            for w in range(self.n_workers)
        ]
        for th in threads:
            th.start()
        if self.watchdog_s is None:
            for th in threads:
                th.join()
        else:
            deadline = time.monotonic() + self.watchdog_s
            last_progress = -1
            while any(th.is_alive() for th in threads):
                for th in threads:
                    th.join(timeout=0.05)
                with self.cv:
                    progress = self._settled()
                if progress != last_progress:
                    last_progress = progress
                    deadline = time.monotonic() + self.watchdog_s
                elif time.monotonic() > deadline:
                    msg = self._watchdog_message()
                    with self.cv:
                        self.aborted = True
                        self.cv.notify_all()
                    raise RuntimeError(msg)
        if self.quarantined:
            # Everything independent of the failures completed; now
            # surface the first failure to the caller.
            raise next(iter(self.quarantined.values()))
        if self.n_done != self.dag.n_tasks:
            raise RuntimeError("threaded factorization stalled")


class _ThreadedSolve:
    """Task bodies for the parallel triangular solve.

    Executes the DAG of :func:`repro.dag.build_solve_dag` for real:
    forward panel solves and GEMV slices, the LDLᵀ diagonal scaling
    folded into the start of each backward panel, then the backward
    sweep.  Shared-vector regions are protected by the same mutex
    namespaces the DAG declares (forward: the facing panel; backward:
    the source panel).
    """

    def __init__(self, factor: NumericFactor, x: np.ndarray) -> None:
        import scipy.linalg as sla

        self.sla = sla
        self.factor = factor
        self.x = x
        # Backward contributions accumulate separately so they never
        # interleave with forward reads of the same panel columns.
        self.acc = np.zeros_like(x)
        self.sym = factor.symbol
        self.K = self.sym.n_cblk

    def run_task(self, dag, task: int) -> None:
        from repro.kernels.panel import update_slice

        sla, factor, sym, x = self.sla, self.factor, self.sym, self.x
        src, tgt = int(dag.cblk[task]), int(dag.target[task])
        kind = TaskKind(int(dag.kind[task]))
        f, l = int(sym.cblk_ptr[src]), int(sym.cblk_ptr[src + 1])
        w = l - f
        panel = factor.L[src]
        backward = task >= dag.n_tasks // 2  # [Pf | Uf | Pb | Ub] layout

        if kind != TaskKind.UPDATE:
            diag = panel[:w, :w]
            unit = factor.factotype in ("ldlt", "lu")
            if not backward:
                x[f:l] = sla.solve_triangular(
                    diag, x[f:l], lower=True, unit_diagonal=unit,
                    check_finite=False,
                )
                return
            rhs = x[f:l]
            if factor.factotype == "ldlt":
                rhs = rhs / factor.D[src]
            rhs = rhs - self.acc[f:l]
            if factor.factotype == "lu":
                x[f:l] = sla.solve_triangular(
                    diag, rhs, lower=False, check_finite=False
                )
            else:
                x[f:l] = sla.solve_triangular(
                    diag, rhs, lower=True, unit_diagonal=unit,
                    trans="T", check_finite=False,
                )
            return

        i0, i1, rk = update_slice(factor, src, tgt)
        rows = rk[i0:i1]
        if not backward:
            x[rows] -= panel[w + i0: w + i1, :] @ x[f:l]
        else:
            block = (
                factor.U[src][w + i0: w + i1, :]
                if factor.factotype == "lu"
                else panel[w + i0: w + i1, :]
            )
            self.acc[f:l] += block.T @ x[rows]


def solve_threaded(
    factor: NumericFactor,
    b: np.ndarray,
    *,
    n_workers: int = 4,
) -> np.ndarray:
    """Parallel triangular solve of the factored system on threads.

    Equivalent to :func:`repro.core.triangular.solve_factored` (the tests
    assert agreement to roundoff) but executes the solve-phase DAG on a
    worker pool.
    """
    from repro.dag.solve_builder import build_solve_dag

    x = np.array(b, dtype=factor.dtype, copy=True)
    dag = build_solve_dag(factor.symbol, factor.factotype, dtype=factor.dtype)
    body = _ThreadedSolve(factor, x)

    deps_left = dag.n_deps.copy()
    ready: deque[int] = deque(int(t) for t in dag.sources())
    cv = threading.Condition()
    locks = [threading.Lock() for _ in range(2 * factor.symbol.n_cblk)]
    state = {"done": 0, "failure": None}

    def worker() -> None:
        while True:
            with cv:
                while not ready and state["done"] < dag.n_tasks \
                        and state["failure"] is None:
                    cv.wait()
                if state["failure"] is not None or state["done"] == dag.n_tasks:
                    return
                t = ready.popleft()
            try:
                grp = int(dag.mutex[t])
                if grp >= 0:
                    with locks[grp]:
                        body.run_task(dag, t)
                else:
                    body.run_task(dag, t)
            except BaseException as exc:
                with cv:
                    state["failure"] = exc
                    cv.notify_all()
                return
            with cv:
                state["done"] += 1
                for s in dag.successors(t):
                    deps_left[s] -= 1
                    if deps_left[s] == 0:
                        ready.append(int(s))
                cv.notify_all()

    threads = [
        threading.Thread(target=worker, daemon=True) for _ in range(n_workers)
    ]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    if state["failure"] is not None:
        raise state["failure"]
    if state["done"] != dag.n_tasks:
        raise RuntimeError("threaded solve stalled")
    return x


def factorize_threaded(
    symbol: SymbolMatrix,
    matrix: SparseMatrixCSC,
    factotype: str,
    *,
    n_workers: int = 4,
    workspace: bool = True,
    dtype=None,
    trace: Optional[ExecutionTrace] = None,
    max_retries: int = 0,
    watchdog_s: float | None = None,
) -> NumericFactor:
    """Factorize on a thread pool; returns the :class:`NumericFactor`.

    Pass an :class:`ExecutionTrace` to collect per-task timings (adds a
    little locking overhead).  ``max_retries`` re-runs a raising task
    body that many times before quarantining it (see
    :class:`_ThreadedRun`); ``watchdog_s`` turns a wedged pool into a
    diagnostic ``RuntimeError`` instead of an unbounded ``join()``.
    """
    factor = NumericFactor.assemble(symbol, matrix, factotype, dtype=dtype)
    dag = build_dag(
        symbol, factotype, granularity="2d", dtype=factor.dtype
    )
    run = _ThreadedRun(factor, dag, n_workers, workspace, trace,
                       max_retries=max_retries, watchdog_s=watchdog_s)
    run.run()
    return factor
