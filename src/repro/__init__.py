"""repro — a supernodal sparse direct solver over task-based runtimes.

A from-scratch Python reproduction of *"Taking advantage of hybrid
systems for sparse direct solvers via task-based runtimes"* (Lacoste,
Faverge, Ramet, Thibault, Bosilca, 2014): the PaStiX-style solver
(nested dissection, block symbolic factorization, supernodal
Cholesky/LDLᵀ/LU), its factorization task DAG, three scheduler policies
(native / StarPU-like / PaRSEC-like), a real threaded execution engine,
and a discrete-event machine simulator with GPU models that regenerates
the paper's figures.

Public entry points:

* :class:`repro.SparseSolver` — analyze / factorize / solve;
* :mod:`repro.sparse` — matrices, generators, the Table-I collection;
* :mod:`repro.dag` + :mod:`repro.runtime` + :mod:`repro.machine` — the
  task graph, scheduler policies, and simulated heterogeneous machines.
"""

from repro.core.options import SolverOptions
from repro.core.solver import FactorizationInfo, SparseSolver
from repro.symbolic.analyze import AnalysisResult, SymbolicOptions, analyze

__version__ = "1.0.0"

__all__ = [
    "SparseSolver",
    "SolverOptions",
    "FactorizationInfo",
    "analyze",
    "AnalysisResult",
    "SymbolicOptions",
    "__version__",
]
